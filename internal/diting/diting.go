// Package diting implements the study's tracing tool (§2.3): a Dapper-like
// per-IO tracer that samples one in every trace.SampleRate IOs into trace
// records, and a full-scale aggregator that folds *every* IO into
// second-granularity metric rows for the compute domain (per QP-WT) and the
// storage domain (per segment), following the Table 1 schema.
//
// The ingest surface is batch-first: the simulation engine emits columnar
// trace.Batch blocks through EmitBatch, and Observe remains as the
// record-at-a-time path. Metric accumulators are slab-allocated and tracers
// are poolable (Acquire/Release), so steady-state ingest allocates nothing.
package diting

import (
	"cmp"
	"slices"
	"sync"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

// slabBlockSize is the accumulator slab granularity: one allocation per 256
// distinct metric keys instead of one per key.
const slabBlockSize = 256

// Tracer accumulates one observation window of trace and metric data.
// It is not safe for concurrent use; the parallel simulation engine gives
// each shard its own Tracer and combines them afterwards with Merge.
type Tracer struct {
	sampleEvery uint64
	nextID      uint64

	records []trace.Record

	compute map[computeKey]*accum
	storage map[storageKey]*accum

	// Accumulator slab: fixed-size blocks so handed-out pointers stay valid
	// as the tracer grows, reusable across pool generations.
	slabs               [][]accum
	slabBlock, slabNext int

	// EmitBatch accumulator memo for the current second (see batch.go).
	memoSec int32
	qpMemo  []qpMemoEnt
	segMemo []segMemoEnt

	// Sort scratch, reused across pool generations: merge and row export
	// sort permutation indices and packed keys instead of moving whole
	// records through a comparison sort.
	idxBuf    []int32
	keyBuf    []rowKey
	accBuf    []*accum
	concatBuf []trace.Record
}

// rowKey pairs a packed (sec, entity) sort key with the row's position in
// the export scratch. Sec and entity IDs are non-negative, so ordering by
// the packed uint64 equals ordering by (sec, entity).
type rowKey struct {
	k uint64
	i int32
}

type computeKey struct {
	sec int32
	qp  cluster.QPID
}

type storageKey struct {
	sec int32
	seg cluster.SegmentID
}

type accum struct {
	row trace.MetricRow
}

// New creates a tracer sampling one in sampleEvery IOs (use
// trace.SampleRate for the paper's 1/3200; values < 1 are clamped to 1).
func New(sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{
		sampleEvery: uint64(sampleEvery),
		compute:     make(map[computeKey]*accum),
		storage:     make(map[storageKey]*accum),
		memoSec:     -1,
	}
}

// tracerPool recycles released tracers with their maps, slabs, and record
// buffers intact.
var tracerPool = sync.Pool{New: func() any { return New(1) }}

// Acquire returns a pooled tracer configured like New(sampleEvery). Release
// it when its outputs have been merged or detached.
func Acquire(sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t := tracerPool.Get().(*Tracer)
	t.sampleEvery = uint64(sampleEvery)
	return t
}

// Release resets the tracer and returns it to the pool. Anything still
// referencing its records or rows must have copied (Merge copies) or
// detached (DetachRecords) them first.
func (t *Tracer) Release() {
	t.nextID = 0
	t.records = t.records[:0]
	clear(t.compute)
	clear(t.storage)
	t.slabBlock, t.slabNext = 0, 0
	t.memoSec = -1
	t.qpMemo = t.qpMemo[:0]
	t.segMemo = t.segMemo[:0]
	t.keyBuf = t.keyBuf[:0]
	t.accBuf = t.accBuf[:0]
	t.concatBuf = t.concatBuf[:0]
	tracerPool.Put(t)
}

// DetachRecords returns the sampled records and removes them from the
// tracer, so the caller can retain them past a Release.
func (t *Tracer) DetachRecords() []trace.Record {
	out := t.records
	t.records = nil
	return out
}

// alloc carves one accumulator out of the slab. The caller must fully
// assign its row (slab memory is recycled dirty).
func (t *Tracer) alloc() *accum {
	if t.slabBlock == len(t.slabs) {
		t.slabs = append(t.slabs, make([]accum, slabBlockSize))
	}
	blk := t.slabs[t.slabBlock]
	a := &blk[t.slabNext]
	t.slabNext++
	if t.slabNext == len(blk) {
		t.slabBlock++
		t.slabNext = 0
	}
	return a
}

// NextTraceID issues a fresh unique trace ID.
func (t *Tracer) NextTraceID() uint64 {
	t.nextID++
	return t.nextID
}

// StartStream positions the tracer's ID counter at base, so subsequent
// NextTraceID calls issue base+1, base+2, ... Sharded simulations call this
// once per virtual disk with a disk-derived base: the sampling decision
// hashes the trace ID, so disk-derived IDs make the sampled set a pure
// function of (disk, per-disk sequence) — independent of which shard or
// worker processes the disk.
func (t *Tracer) StartStream(base uint64) { t.nextID = base }

// Observe ingests one completed IO: it always updates both metric domains
// and records the full trace when the ID falls in the sample. It is the
// record-at-a-time form of EmitBatch.
func (t *Tracer) Observe(rec trace.Record) {
	if t.sampled(rec.TraceID) {
		t.records = append(t.records, rec)
	}
	sec := int32(rec.TimeUS / 1_000_000)
	bytes := float64(rec.Size)

	ck := computeKey{sec: sec, qp: rec.QP}
	ca := t.compute[ck]
	if ca == nil {
		ca = t.alloc()
		ca.row = trace.MetricRow{
			Domain: trace.DomainCompute, Sec: sec, DC: rec.DC,
			User: rec.User, VM: rec.VM, VD: rec.VD,
			Node: rec.Node, QP: rec.QP, WT: rec.WT,
		}
		t.compute[ck] = ca
	}
	addDirectional(&ca.row, rec.Op, bytes)

	sk := storageKey{sec: sec, seg: rec.Segment}
	sa := t.storage[sk]
	if sa == nil {
		sa = t.alloc()
		sa.row = trace.MetricRow{
			Domain: trace.DomainStorage, Sec: sec, DC: rec.DC,
			User: rec.User, VM: rec.VM, VD: rec.VD,
			Storage: rec.Storage, Segment: rec.Segment,
		}
		t.storage[sk] = sa
	}
	addDirectional(&sa.row, rec.Op, bytes)
}

func addDirectional(row *trace.MetricRow, op trace.Op, bytes float64) {
	if op == trace.OpRead {
		row.ReadBps += bytes
		row.ReadIOPS++
	} else {
		row.WriteBps += bytes
		row.WriteIOPS++
	}
}

// sampled mirrors trace.Sampled but honors the tracer's configured rate.
func (t *Tracer) sampled(id uint64) bool {
	if t.sampleEvery == 1 {
		return true
	}
	x := id + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return x%t.sampleEvery == 0
}

// Records returns the sampled trace records in observation order.
func (t *Tracer) Records() []trace.Record { return t.records }

// ComputeRows returns the compute-domain metric rows sorted by (sec, qp).
// Since rows aggregate exactly one second, the accumulated byte totals are
// already rates (bytes/s and ops/s).
func (t *Tracer) ComputeRows() []trace.MetricRow {
	t.keyBuf = t.keyBuf[:0]
	t.accBuf = t.accBuf[:0]
	for k, a := range t.compute {
		t.keyBuf = append(t.keyBuf, rowKey{uint64(uint32(k.sec))<<32 | uint64(uint32(k.qp)), int32(len(t.accBuf))})
		t.accBuf = append(t.accBuf, a)
	}
	return t.exportRows()
}

// exportRows sorts keyBuf and materializes accBuf's rows in key order. Keys
// are unique (one accumulator per map key), so the order is deterministic.
// Sorting 12-byte keys and copying each 96-byte row exactly once is far
// cheaper than comparison-sorting the rows themselves.
func (t *Tracer) exportRows() []trace.MetricRow {
	slices.SortFunc(t.keyBuf, func(a, b rowKey) int { return cmp.Compare(a.k, b.k) })
	out := make([]trace.MetricRow, len(t.keyBuf))
	for j, kv := range t.keyBuf {
		out[j] = t.accBuf[kv.i].row
	}
	return out
}

// Merge combines shard tracers into one: metric accumulators are merged by
// key (summing rates when shards touched the same key), trace records are
// concatenated and sorted into canonical (TimeUS, VD) order, and trace IDs
// are reassigned 1..N in that order. Because each virtual disk is processed
// whole by exactly one shard, same-VD records arrive contiguous and in
// generation order, which the stable sort preserves — so the merged output
// is byte-identical no matter how disks were distributed across shards.
// Rows and records are copied into the destination, so the shards may be
// Released afterwards (they must not be observed into again regardless).
func Merge(sampleEvery int, shards ...*Tracer) *Tracer {
	out := Acquire(sampleEvery)
	return mergeInto(out, shards...)
}

// mergeInto is Merge into a caller-supplied destination tracer (fresh from
// New or Acquire).
func mergeInto(out *Tracer, shards ...*Tracer) *Tracer {
	var nRecords int
	for _, sh := range shards {
		nRecords += len(sh.records)
	}
	// Concatenate into out's reusable buffer, then stable-sort a permutation
	// and materialize once: each record moves twice in total, instead of the
	// O(n log n) whole-record moves of sorting the records in place. The
	// index sort is stable over increasing indices, so it yields exactly the
	// stable (TimeUS, VD) order.
	if cap(out.concatBuf) < nRecords {
		out.concatBuf = make([]trace.Record, 0, nRecords)
	}
	concat := out.concatBuf[:0]
	for _, sh := range shards {
		concat = append(concat, sh.records...)
		mergeAccums(out, out.compute, sh.compute)
		mergeAccums(out, out.storage, sh.storage)
	}
	out.concatBuf = concat
	if cap(out.idxBuf) < nRecords {
		out.idxBuf = make([]int32, nRecords)
	}
	idx := out.idxBuf[:nRecords]
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortStableFunc(idx, func(a, b int32) int {
		ra, rb := &concat[a], &concat[b]
		if ra.TimeUS != rb.TimeUS {
			return cmp.Compare(ra.TimeUS, rb.TimeUS)
		}
		return cmp.Compare(ra.VD, rb.VD)
	})
	sorted := make([]trace.Record, nRecords)
	for j, i := range idx {
		sorted[j] = concat[i]
		sorted[j].TraceID = uint64(j + 1)
	}
	out.records = sorted
	out.nextID = uint64(nRecords)
	return out
}

// mergeAccums folds src into dst, summing directional rates on key
// collisions (identity fields agree by construction: the key pins the row's
// entity and every entity belongs to exactly one VD). Rows are copied into
// out's slab — never aliased — so src's owner can recycle its memory.
func mergeAccums[K comparable](out *Tracer, dst, src map[K]*accum) {
	for k, sa := range src {
		da := dst[k]
		if da == nil {
			da = out.alloc()
			da.row = sa.row
			dst[k] = da
			continue
		}
		da.row.ReadBps += sa.row.ReadBps
		da.row.WriteBps += sa.row.WriteBps
		da.row.ReadIOPS += sa.row.ReadIOPS
		da.row.WriteIOPS += sa.row.WriteIOPS
	}
}

// StorageRows returns the storage-domain metric rows sorted by (sec, seg).
func (t *Tracer) StorageRows() []trace.MetricRow {
	t.keyBuf = t.keyBuf[:0]
	t.accBuf = t.accBuf[:0]
	for k, a := range t.storage {
		t.keyBuf = append(t.keyBuf, rowKey{uint64(uint32(k.sec))<<32 | uint64(uint32(k.seg)), int32(len(t.accBuf))})
		t.accBuf = append(t.accBuf, a)
	}
	return t.exportRows()
}
