// Package diting implements the study's tracing tool (§2.3): a Dapper-like
// per-IO tracer that samples one in every trace.SampleRate IOs into trace
// records, and a full-scale aggregator that folds *every* IO into
// second-granularity metric rows for the compute domain (per QP-WT) and the
// storage domain (per segment), following the Table 1 schema.
package diting

import (
	"sort"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

// Tracer accumulates one observation window of trace and metric data.
// It is not safe for concurrent use; the parallel simulation engine gives
// each shard its own Tracer and combines them afterwards with Merge.
type Tracer struct {
	sampleEvery uint64
	nextID      uint64

	records []trace.Record

	compute map[computeKey]*accum
	storage map[storageKey]*accum
}

type computeKey struct {
	sec int32
	qp  cluster.QPID
}

type storageKey struct {
	sec int32
	seg cluster.SegmentID
}

type accum struct {
	row trace.MetricRow
}

// New creates a tracer sampling one in sampleEvery IOs (use
// trace.SampleRate for the paper's 1/3200; values < 1 are clamped to 1).
func New(sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{
		sampleEvery: uint64(sampleEvery),
		compute:     make(map[computeKey]*accum),
		storage:     make(map[storageKey]*accum),
	}
}

// NextTraceID issues a fresh unique trace ID.
func (t *Tracer) NextTraceID() uint64 {
	t.nextID++
	return t.nextID
}

// StartStream positions the tracer's ID counter at base, so subsequent
// NextTraceID calls issue base+1, base+2, ... Sharded simulations call this
// once per virtual disk with a disk-derived base: the sampling decision
// hashes the trace ID, so disk-derived IDs make the sampled set a pure
// function of (disk, per-disk sequence) — independent of which shard or
// worker processes the disk.
func (t *Tracer) StartStream(base uint64) { t.nextID = base }

// Observe ingests one completed IO: it always updates both metric domains
// and records the full trace when the ID falls in the sample.
func (t *Tracer) Observe(rec trace.Record) {
	if t.sampled(rec.TraceID) {
		t.records = append(t.records, rec)
	}
	sec := int32(rec.TimeUS / 1_000_000)
	bytes := float64(rec.Size)

	ck := computeKey{sec: sec, qp: rec.QP}
	ca := t.compute[ck]
	if ca == nil {
		ca = &accum{row: trace.MetricRow{
			Domain: trace.DomainCompute, Sec: sec, DC: rec.DC,
			User: rec.User, VM: rec.VM, VD: rec.VD,
			Node: rec.Node, QP: rec.QP, WT: rec.WT,
		}}
		t.compute[ck] = ca
	}
	addDirectional(&ca.row, rec.Op, bytes)

	sk := storageKey{sec: sec, seg: rec.Segment}
	sa := t.storage[sk]
	if sa == nil {
		sa = &accum{row: trace.MetricRow{
			Domain: trace.DomainStorage, Sec: sec, DC: rec.DC,
			User: rec.User, VM: rec.VM, VD: rec.VD,
			Storage: rec.Storage, Segment: rec.Segment,
		}}
		t.storage[sk] = sa
	}
	addDirectional(&sa.row, rec.Op, bytes)
}

func addDirectional(row *trace.MetricRow, op trace.Op, bytes float64) {
	if op == trace.OpRead {
		row.ReadBps += bytes
		row.ReadIOPS++
	} else {
		row.WriteBps += bytes
		row.WriteIOPS++
	}
}

// sampled mirrors trace.Sampled but honors the tracer's configured rate.
func (t *Tracer) sampled(id uint64) bool {
	if t.sampleEvery == 1 {
		return true
	}
	x := id + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return x%t.sampleEvery == 0
}

// Records returns the sampled trace records in observation order.
func (t *Tracer) Records() []trace.Record { return t.records }

// ComputeRows returns the compute-domain metric rows sorted by (sec, qp).
// Since rows aggregate exactly one second, the accumulated byte totals are
// already rates (bytes/s and ops/s).
func (t *Tracer) ComputeRows() []trace.MetricRow {
	out := make([]trace.MetricRow, 0, len(t.compute))
	for _, a := range t.compute {
		out = append(out, a.row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sec != out[j].Sec {
			return out[i].Sec < out[j].Sec
		}
		return out[i].QP < out[j].QP
	})
	return out
}

// Merge combines shard tracers into one: metric accumulators are merged by
// key (summing rates when shards touched the same key), trace records are
// concatenated and sorted into canonical (TimeUS, VD) order, and trace IDs
// are reassigned 1..N in that order. Because each virtual disk is processed
// whole by exactly one shard, same-VD records arrive contiguous and in
// generation order, which the stable sort preserves — so the merged output
// is byte-identical no matter how disks were distributed across shards.
// The shards themselves are consumed and must not be used afterwards.
func Merge(sampleEvery int, shards ...*Tracer) *Tracer {
	out := New(sampleEvery)
	var nRecords int
	for _, sh := range shards {
		nRecords += len(sh.records)
	}
	out.records = make([]trace.Record, 0, nRecords)
	for _, sh := range shards {
		out.records = append(out.records, sh.records...)
		mergeAccums(out.compute, sh.compute)
		mergeAccums(out.storage, sh.storage)
	}
	sort.SliceStable(out.records, func(i, j int) bool {
		if out.records[i].TimeUS != out.records[j].TimeUS {
			return out.records[i].TimeUS < out.records[j].TimeUS
		}
		return out.records[i].VD < out.records[j].VD
	})
	for i := range out.records {
		out.records[i].TraceID = uint64(i + 1)
	}
	out.nextID = uint64(len(out.records))
	return out
}

// mergeAccums folds src into dst, summing directional rates on key
// collisions (identity fields agree by construction: the key pins the row's
// entity and every entity belongs to exactly one VD).
func mergeAccums[K comparable](dst, src map[K]*accum) {
	for k, sa := range src {
		da := dst[k]
		if da == nil {
			dst[k] = sa
			continue
		}
		da.row.ReadBps += sa.row.ReadBps
		da.row.WriteBps += sa.row.WriteBps
		da.row.ReadIOPS += sa.row.ReadIOPS
		da.row.WriteIOPS += sa.row.WriteIOPS
	}
}

// StorageRows returns the storage-domain metric rows sorted by (sec, seg).
func (t *Tracer) StorageRows() []trace.MetricRow {
	out := make([]trace.MetricRow, 0, len(t.storage))
	for _, a := range t.storage {
		out = append(out, a.row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sec != out[j].Sec {
			return out[i].Sec < out[j].Sec
		}
		return out[i].Segment < out[j].Segment
	})
	return out
}
