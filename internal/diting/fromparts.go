package diting

import "ebslab/internal/trace"

// FromParts reconstructs a Tracer from previously exported parts — sampled
// records plus the two metric-row domains — so a tracer can cross a process
// boundary: a fabric worker ships Records/ComputeRows/StorageRows over the
// wire and the coordinator rebuilds an equivalent tracer to feed Merge.
// Rows are re-keyed exactly as Observe keyed them ((sec, qp) and (sec,
// seg)), and since every key pins one VD, rebuilding shard tracers from
// VD-disjoint shards never collides a key across shards: Merge of rebuilt
// tracers is byte-identical to Merge of the originals.
func FromParts(sampleEvery int, records []trace.Record, compute, storage []trace.MetricRow) *Tracer {
	t := New(sampleEvery)
	t.records = records
	for i := range compute {
		row := compute[i]
		t.compute[computeKey{sec: row.Sec, qp: row.QP}] = &accum{row: row}
	}
	for i := range storage {
		row := storage[i]
		t.storage[storageKey{sec: row.Sec, seg: row.Segment}] = &accum{row: row}
	}
	return t
}
