package scenario

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"strings"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// Replay schemas. "auto" sniffs the first line; the native schemas are the
// repo's own trace codecs; msr is the MSR-Cambridge block-trace CSV
// (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime with FILETIME
// ticks); tianchi is the Alibaba cloud-disk trace CSV
// (device_id,opcode,offset,length,timestamp with microsecond timestamps).
const (
	SchemaAuto        = "auto"
	SchemaNativeJSONL = "native-jsonl"
	SchemaNativeCSV   = "native-csv"
	SchemaMSR         = "msr"
	SchemaTianchi     = "tianchi"
)

// maxReplayEvents caps how many records one ingest may retain, so a huge
// foreign trace cannot exhaust memory: sample it down instead.
const maxReplayEvents = 1 << 24

// ReplayConfig shapes the replay scenario: a foreign (or native) block
// trace streamed from disk, normalised into the bound fleet, and replayed
// through the standard batch pipeline.
//
// Normalisation rules for foreign schemas: timestamps are rebased to the
// first record and converted to microseconds (scaled by TimeScale); devices
// are mapped onto fleet VDs by a stable hash; offsets are wrapped into the
// target VD's capacity and 4 KiB-aligned; sizes are rounded up to a 4 KiB
// multiple and clamped to 4 MiB; queue pairs are picked by a seed-derived
// hash of the record ordinal. Native schemas are replayed verbatim
// (RecordSource), preserving measured latencies and placement — replaying a
// round-tripped native trace of the same fleet reproduces the original
// dataset fingerprint. Malformed input (bad numbers, NaN, negative offsets
// or sizes, unknown opcodes) fails the ingest with a positional error; no
// record is ever silently skipped.
type ReplayConfig struct {
	// Path is the trace file to ingest.
	Path string
	// Schema names the input layout (default auto).
	Schema string
	// SampleEvery keeps one in N input records, decided by a deterministic
	// hash of the record ordinal — the same subset for every worker count
	// and target fleet (default 1 = keep everything; 3200 mimics the
	// paper's tracing rate).
	SampleEvery int
	// TimeScale multiplies foreign relative timestamps (default 1; 0.1
	// compresses a long trace tenfold into the run window).
	TimeScale float64
}

func buildReplay(sp Spec) (config, error) {
	c := ReplayConfig{Schema: SchemaAuto, SampleEvery: 1, TimeScale: 1}
	p := newParams(sp)
	p.Str("path", &c.Path)
	p.Str("schema", &c.Schema)
	p.Int("sample", &c.SampleEvery)
	p.Float("timescale", &c.TimeScale)
	if err := p.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate rejects parameter values that have no meaning.
func (c ReplayConfig) Validate() error {
	if c.Path == "" {
		return fmt.Errorf("scenario: replay needs path=<trace file>")
	}
	return c.validateShape()
}

// validateShape checks every field except Path (Ingest callers supply their
// own reader).
func (c ReplayConfig) validateShape() error {
	switch c.Schema {
	case SchemaAuto, SchemaNativeJSONL, SchemaNativeCSV, SchemaMSR, SchemaTianchi:
	default:
		return fmt.Errorf("scenario: replay schema %q, want one of %s, %s, %s, %s, %s",
			c.Schema, SchemaAuto, SchemaNativeJSONL, SchemaNativeCSV, SchemaMSR, SchemaTianchi)
	}
	if c.SampleEvery < 1 {
		return fmt.Errorf("scenario: replay sample %d, want >= 1", c.SampleEvery)
	}
	if !(c.TimeScale > 0) || c.TimeScale > 1e6 {
		return fmt.Errorf("scenario: replay timescale %g, want in (0, 1e6]", c.TimeScale)
	}
	return nil
}

func (c ReplayConfig) bind(sp Spec, f *workload.Fleet) (Workload, error) {
	file, err := os.Open(c.Path)
	if err != nil {
		return nil, fmt.Errorf("scenario: replay: %w", err)
	}
	defer file.Close()
	r, err := c.Ingest(file, f)
	if err != nil {
		return nil, err
	}
	r.spec = sp
	return r, nil
}

// ReplayStats is the ingest accounting a replay exposes for reporting.
type ReplayStats struct {
	// Schema is the resolved (post-sniff) input schema.
	Schema string
	// Records is how many input records were parsed.
	Records int
	// Kept is how many survived sampling (and, for native schemas, how many
	// records the run will replay).
	Kept int
	// Reordered counts foreign records whose timestamp preceded the first
	// record's (clamped to the window start).
	Reordered int
	// Clamped counts foreign records whose size or offset had to be
	// adjusted to fit the target VD.
	Clamped int
}

// Replay is a bound replay scenario. Native-schema replays implement
// RecordSource (records pass through verbatim); foreign-schema replays
// normalise into events and take the generated path, where the engine
// supplies placement, worker threads, throttling, and latency.
type Replay struct {
	spec   Spec
	cfg    ReplayConfig
	fleet  *workload.Fleet
	native bool
	recs   [][]trace.Record
	events [][]workload.Event
	series [][]workload.Sample
	stats  ReplayStats
}

func (r *Replay) Name() string           { return "replay" }
func (r *Replay) Spec() string           { return r.spec.String() }
func (r *Replay) Fleet() *workload.Fleet { return r.fleet }

// Stats returns the ingest accounting.
func (r *Replay) Stats() ReplayStats { return r.stats }

// SourcesRecords reports whether this replay carries verbatim records.
func (r *Replay) SourcesRecords() bool { return r.native }

// Records returns vd's verbatim record stream (native schemas only).
func (r *Replay) Records(vd cluster.VDID) []trace.Record {
	if int(vd) >= len(r.recs) {
		return nil
	}
	return r.recs[vd]
}

// EventSampleEvery tells runners the thinning factor already applied at
// ingest, so metric rows re-scale to the full-trace rates (see
// ebs.Options.EventSampleEvery).
func (r *Replay) EventSampleEvery() int { return r.cfg.SampleEvery }

// SeriesInto returns the demand series derived from the ingested events,
// scaled back up by the ingest sampling factor so the throttle replays
// against the estimated full-trace offered load.
func (r *Replay) SeriesInto(buf []workload.Sample, vd cluster.VDID, durSec int) []workload.Sample {
	if cap(buf) < durSec {
		buf = make([]workload.Sample, durSec)
	}
	out := buf[:durSec]
	for i := range out {
		out[i] = workload.Sample{}
	}
	if int(vd) < len(r.series) {
		src := r.series[vd]
		for t := 0; t < len(src) && t < durSec; t++ {
			out[t] = src[t]
		}
	}
	return out
}

// GenEvents replays vd's normalised events that fall inside the run window.
// Ingest-time sampling is the stream's thinning, so sampleEvery is ignored
// (runners learn the ingest factor via EventSampleEvery); boost is ignored
// too — a replayed trace is verbatim history, chaos storms cannot inflate
// it.
func (r *Replay) GenEvents(vd cluster.VDID, series []workload.Sample, sampleEvery int, boost func(sec int) float64, emit func(workload.Event)) {
	if int(vd) >= len(r.events) {
		return
	}
	limitUS := int64(len(series)) * 1_000_000
	for _, ev := range r.events[vd] {
		if ev.TimeUS < limitUS {
			emit(ev)
		}
	}
}

// Ingest streams a trace from rd and normalises it into f's address space.
// It is the replay scenario's core, exported for benchmarks and fuzzing;
// Bind calls it on the configured file.
func (c ReplayConfig) Ingest(rd io.Reader, f *workload.Fleet) (*Replay, error) {
	if err := c.validateShape(); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(rd, 64<<10)
	schema := c.Schema
	if schema == SchemaAuto {
		var err error
		if schema, err = sniffSchema(br); err != nil {
			return nil, err
		}
	}
	r := &Replay{
		spec:  Spec{Name: "replay"},
		cfg:   c,
		fleet: f,
		stats: ReplayStats{Schema: schema},
	}
	nVDs := len(f.Topology.VDs)
	var err error
	switch schema {
	case SchemaNativeJSONL, SchemaNativeCSV:
		r.native = true
		r.recs = make([][]trace.Record, nVDs)
		err = r.ingestNative(br, schema)
	case SchemaMSR, SchemaTianchi:
		r.events = make([][]workload.Event, nVDs)
		r.series = make([][]workload.Sample, nVDs)
		err = r.ingestForeign(br, schema)
	default:
		err = fmt.Errorf("scenario: replay schema %q not ingestable", schema)
	}
	if err != nil {
		return nil, err
	}
	if r.stats.Kept == 0 {
		return nil, fmt.Errorf("scenario: replay: no records survived ingest (%d parsed, sample=%d) — nothing to simulate",
			r.stats.Records, c.SampleEvery)
	}
	return r, nil
}

// sniffSchema inspects the buffered input's first line without consuming it.
func sniffSchema(br *bufio.Reader) (string, error) {
	peek, err := br.Peek(64 << 10)
	if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
		return "", fmt.Errorf("scenario: replay sniff: %w", err)
	}
	line := string(peek)
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return "", fmt.Errorf("scenario: replay: empty input, cannot sniff a schema")
	}
	if line[0] == '{' {
		return SchemaNativeJSONL, nil
	}
	fields := strings.Split(line, ",")
	switch {
	case len(fields) == 19 && fields[0] == "trace_id":
		return SchemaNativeCSV, nil
	case len(fields) == 7:
		return SchemaMSR, nil
	case len(fields) == 5:
		return SchemaTianchi, nil
	}
	return "", fmt.Errorf("scenario: replay: cannot sniff schema from a %d-column first line; pass schema=", len(fields))
}

// keep is the deterministic ingest sampler: a pure hash of the record
// ordinal, independent of worker count and target fleet.
func (c ReplayConfig) keepOrdinal(ord uint64) bool {
	return c.SampleEvery <= 1 || splitmix64(ord)%uint64(c.SampleEvery) == 0
}

// ingestNative reads the repo's own trace codecs and validates every record
// against the bound topology — a native replay only makes sense against the
// fleet recipe that produced the trace, and out-of-range identifiers would
// otherwise crash the engine's placement lookups.
func (r *Replay) ingestNative(rd io.Reader, schema string) error {
	var recs []trace.Record
	var err error
	if schema == SchemaNativeJSONL {
		recs, err = trace.ReadTraceJSONL(rd)
	} else {
		recs, err = trace.ReadTraceCSV(rd)
	}
	if err != nil {
		return fmt.Errorf("scenario: replay: %w", err)
	}
	top := r.fleet.Topology
	for i := range recs {
		rec := &recs[i]
		r.stats.Records++
		if !r.cfg.keepOrdinal(uint64(i)) {
			continue
		}
		if int(rec.VD) >= len(top.VDs) || rec.VD < 0 {
			return fmt.Errorf("scenario: replay record %d: VD %d outside the bound fleet's %d disks (native replay needs the generating fleet recipe)", i+1, rec.VD, len(top.VDs))
		}
		if int(rec.QP) >= len(top.QPs) || rec.QP < 0 {
			return fmt.Errorf("scenario: replay record %d: QP %d outside the bound fleet's %d queue pairs", i+1, rec.QP, len(top.QPs))
		}
		if int(rec.Storage) >= len(top.StorageNodes) || rec.Storage < 0 {
			return fmt.Errorf("scenario: replay record %d: storage node %d outside the bound fleet's %d", i+1, rec.Storage, len(top.StorageNodes))
		}
		if int(rec.Segment) >= len(top.Segments) || rec.Segment < 0 {
			return fmt.Errorf("scenario: replay record %d: segment %d outside the bound fleet's %d", i+1, rec.Segment, len(top.Segments))
		}
		if r.stats.Kept >= maxReplayEvents {
			return fmt.Errorf("scenario: replay retains more than %d records; raise sample=", maxReplayEvents)
		}
		r.stats.Kept++
		r.recs[rec.VD] = append(r.recs[rec.VD], *rec)
	}
	return nil
}

// foreignRecord is one normalised foreign-trace row before fleet mapping.
type foreignRecord struct {
	ts     int64 // native units (FILETIME ticks or µs)
	device string
	op     trace.Op
	offset int64
	size   int64
}

// ingestForeign streams an MSR or tianchi CSV, normalising each record into
// an event on a hash-mapped fleet VD, and derives per-VD per-second demand
// series for the throttle replay.
func (r *Replay) ingestForeign(rd io.Reader, schema string) error {
	cr := csv.NewReader(rd)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1

	wantCols := 7
	tickPerUS := 10.0 // MSR FILETIME: 100ns ticks
	if schema == SchemaTianchi {
		wantCols = 5
		tickPerUS = 1.0
	}
	var (
		ord   uint64
		t0    int64
		first = true
	)
	for line := 1; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("scenario: replay line %d: %w", line, err)
		}
		if len(row) != wantCols {
			return fmt.Errorf("scenario: replay line %d: %d columns, %s wants %d", line, len(row), schema, wantCols)
		}
		fr, header, err := parseForeign(row, schema)
		if err != nil {
			if line == 1 && header {
				continue // a header row is only tolerated as the first line
			}
			return fmt.Errorf("scenario: replay line %d: %w", line, err)
		}
		r.stats.Records++
		if first {
			t0 = fr.ts
			first = false
		}
		o := ord
		ord++
		if !r.cfg.keepOrdinal(o) {
			continue
		}
		if r.stats.Kept >= maxReplayEvents {
			return fmt.Errorf("scenario: replay retains more than %d records; raise sample=", maxReplayEvents)
		}
		r.addForeign(fr, t0, tickPerUS, o)
	}
}

// parseForeign decodes one CSV row. The header flag reports whether the row
// looks like a column header (tolerated as line 1 only).
func parseForeign(row []string, schema string) (foreignRecord, bool, error) {
	var fr foreignRecord
	var tsCol, opCol, offCol, szCol int
	if schema == SchemaMSR {
		tsCol, opCol, offCol, szCol = 0, 3, 4, 5
		fr.device = row[1] + "." + row[2]
	} else {
		tsCol, opCol, offCol, szCol = 4, 1, 2, 3
		fr.device = row[0]
	}
	ts, err := strconv.ParseInt(strings.TrimSpace(row[tsCol]), 10, 64)
	if err != nil {
		return fr, true, fmt.Errorf("timestamp %q: want an integer", row[tsCol])
	}
	if ts < 0 {
		return fr, false, fmt.Errorf("timestamp %d is negative", ts)
	}
	fr.ts = ts
	switch op := strings.TrimSpace(row[opCol]); op {
	case "R", "r", "Read", "read", "READ":
		fr.op = trace.OpRead
	case "W", "w", "Write", "write", "WRITE":
		fr.op = trace.OpWrite
	default:
		return fr, true, fmt.Errorf("opcode %q: want read or write", op)
	}
	if fr.offset, err = strconv.ParseInt(strings.TrimSpace(row[offCol]), 10, 64); err != nil {
		return fr, false, fmt.Errorf("offset %q: want an integer", row[offCol])
	}
	if fr.offset < 0 {
		return fr, false, fmt.Errorf("offset %d is negative", fr.offset)
	}
	if fr.size, err = strconv.ParseInt(strings.TrimSpace(row[szCol]), 10, 64); err != nil {
		return fr, false, fmt.Errorf("size %q: want an integer", row[szCol])
	}
	if fr.size <= 0 {
		return fr, false, fmt.Errorf("size %d, want > 0", fr.size)
	}
	return fr, false, nil
}

// addForeign maps one kept foreign record onto the fleet: device to VD by
// stable hash, timestamp rebased and scaled, size and offset fitted to the
// target disk, queue pair by seed-derived ordinal hash.
func (r *Replay) addForeign(fr foreignRecord, t0 int64, tickPerUS float64, ord uint64) {
	top := r.fleet.Topology
	h := fnv.New64a()
	h.Write([]byte(fr.device)) //nolint:errcheck — fnv never fails
	vd := cluster.VDID(h.Sum64() % uint64(len(top.VDs)))
	d := &top.VDs[vd]

	us := int64(float64(fr.ts-t0) / tickPerUS * r.cfg.TimeScale)
	if us < 0 {
		us = 0
		r.stats.Reordered++
	}

	size := (fr.size + sectorSize - 1) &^ (sectorSize - 1)
	if size > 4<<20 {
		size = 4 << 20
	}
	if size != fr.size {
		r.stats.Clamped++
	}
	offset := alignDown(fr.offset)
	if span := d.Capacity - size; offset > span {
		offset = alignDown(offset % (span + 1))
		r.stats.Clamped++
	}
	qp := d.QPs[uint64(subSeed(r.fleet.Cfg.Seed, tagReplayPick, ord))%uint64(len(d.QPs))]

	ev := workload.Event{TimeUS: us, Op: fr.op, Size: int32(size), Offset: offset, QP: qp}
	r.events[vd] = append(r.events[vd], ev)
	r.stats.Kept++

	// Per-second demand, re-inflated by the sampling factor so the throttle
	// sees the estimated full-trace offered load.
	sec := int(us / 1_000_000)
	for len(r.series[vd]) <= sec {
		r.series[vd] = append(r.series[vd], workload.Sample{})
	}
	s := &r.series[vd][sec]
	scale := float64(r.cfg.SampleEvery)
	if ev.Op == trace.OpRead {
		s.ReadBps += float64(size) * scale
		s.ReadIOPS += scale
	} else {
		s.WriteBps += float64(size) * scale
		s.WriteIOPS += scale
	}
}
