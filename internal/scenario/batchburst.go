package scenario

import (
	"fmt"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// BatchBurstConfig shapes the batchburst scenario: a cohort of VDs fires
// synchronized sequential scans in periodic waves — the batch-parallel
// pattern where thousands of workers start the same job at the same minute —
// over a near-idle mixed baseline. With Stagger 0 every cohort member's wave
// lands on the same seconds, producing the fleet-wide demand spikes the
// paper's burstiness metrics (P2A, CoV) are built to expose.
type BatchBurstConfig struct {
	// WavePeriodSec is the scan wave period (default 30).
	WavePeriodSec int
	// WaveWidthSec is how long each wave lasts (default 6).
	WaveWidthSec int
	// StaggerSec spreads per-VD wave starts uniformly over this many
	// seconds (default 0 = fully synchronized).
	StaggerSec int
	// ScanBps is each scanning VD's sequential read rate during a wave
	// (default 64 MiB/s).
	ScanBps float64
	// IOSizeKB is the scan IO size in KiB (default 256).
	IOSizeKB int
	// Cohort is the fraction of VDs participating in waves (default 1.0).
	Cohort float64
	// Idle scales the fleet's native mean rates for the between-wave
	// baseline (default 0.05).
	Idle float64
}

func buildBatchBurst(sp Spec) (config, error) {
	c := BatchBurstConfig{WavePeriodSec: 30, WaveWidthSec: 6, ScanBps: 64 << 20, IOSizeKB: 256, Cohort: 1.0, Idle: 0.05}
	p := newParams(sp)
	p.Int("wave", &c.WavePeriodSec)
	p.Int("width", &c.WaveWidthSec)
	p.Int("stagger", &c.StaggerSec)
	p.Float("scanbps", &c.ScanBps)
	p.Int("iosizekb", &c.IOSizeKB)
	p.Float("cohort", &c.Cohort)
	p.Float("idle", &c.Idle)
	if err := p.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate rejects parameter values that have no meaning.
func (c BatchBurstConfig) Validate() error {
	switch {
	case c.WavePeriodSec < 2:
		return fmt.Errorf("scenario: batchburst wave %d, want >= 2", c.WavePeriodSec)
	case c.WaveWidthSec < 1 || c.WaveWidthSec >= c.WavePeriodSec:
		return fmt.Errorf("scenario: batchburst width %d, want in [1, wave)", c.WaveWidthSec)
	case c.StaggerSec < 0 || c.StaggerSec >= c.WavePeriodSec:
		return fmt.Errorf("scenario: batchburst stagger %d, want in [0, wave)", c.StaggerSec)
	case c.ScanBps <= 0 || c.ScanBps > 4<<30:
		return fmt.Errorf("scenario: batchburst scanbps %g, want in (0, 4 GiB/s]", c.ScanBps)
	case c.IOSizeKB < 4 || c.IOSizeKB > 4096:
		return fmt.Errorf("scenario: batchburst iosizekb %d, want in [4, 4096]", c.IOSizeKB)
	case c.Cohort <= 0 || c.Cohort > 1:
		return fmt.Errorf("scenario: batchburst cohort %g, want in (0, 1]", c.Cohort)
	case c.Idle < 0 || c.Idle > 1:
		return fmt.Errorf("scenario: batchburst idle %g, want in [0, 1]", c.Idle)
	}
	return nil
}

func (c BatchBurstConfig) bind(sp Spec, f *workload.Fleet) (Workload, error) {
	return &batchBurst{spec: sp, cfg: c, fleet: f}, nil
}

// batchBurst synthesizes its own event stream: sequential scan reads during
// waves, a thin uniform mixed baseline otherwise. All per-VD state (RNG,
// scan position) lives inside the GenEvents call.
type batchBurst struct {
	spec  Spec
	cfg   BatchBurstConfig
	fleet *workload.Fleet
}

func (b *batchBurst) Name() string           { return b.spec.Name }
func (b *batchBurst) Spec() string           { return b.spec.String() }
func (b *batchBurst) Fleet() *workload.Fleet { return b.fleet }

// member reports cohort membership and the VD's wave phase offset, both
// pure hashes of (seed, vd).
func (b *batchBurst) member(vd cluster.VDID) (bool, int) {
	in := hash01(b.fleet.Cfg.Seed, tagBurstMember, uint64(vd)) < b.cfg.Cohort
	phase := 0
	if b.cfg.StaggerSec > 0 {
		phase = int(hash01(b.fleet.Cfg.Seed, tagBurstMember, uint64(vd)+1<<32) * float64(b.cfg.StaggerSec+1))
	}
	return in, phase
}

// scanIOSize is the wave IO size in bytes.
func (b *batchBurst) scanIOSize() int32 { return int32(b.cfg.IOSizeKB) << 10 }

// inWave reports whether second t falls inside a wave for phase offset ph.
func (b *batchBurst) inWave(t, ph int) bool {
	return (t+b.cfg.WavePeriodSec-ph%b.cfg.WavePeriodSec)%b.cfg.WavePeriodSec < b.cfg.WaveWidthSec
}

func (b *batchBurst) SeriesInto(buf []workload.Sample, vd cluster.VDID, durSec int) []workload.Sample {
	m := &b.fleet.Models[vd]
	in, ph := b.member(vd)
	ioSize := float64(b.scanIOSize())
	if cap(buf) < durSec {
		buf = make([]workload.Sample, durSec)
	}
	out := buf[:durSec]
	base := workload.Sample{
		ReadBps:  b.cfg.Idle * m.MeanReadBps,
		WriteBps: b.cfg.Idle * m.MeanWriteBps,
	}
	base.ReadIOPS = base.ReadBps / m.ReadIOSize
	base.WriteIOPS = base.WriteBps / m.WriteIOSize
	for t := 0; t < durSec; t++ {
		s := base
		if in && b.inWave(t, ph) {
			s.ReadBps += b.cfg.ScanBps
			s.ReadIOPS += b.cfg.ScanBps / ioSize
		}
		out[t] = s
	}
	return out
}

// GenEvents walks the series second by second: during waves the scan
// marches sequentially from a seed-derived start offset (wrapping inside
// the VD), baseline IOs land uniformly. Counts honor the chaos boost and
// the engine's event thinning exactly like the fleet generator.
func (b *batchBurst) GenEvents(vd cluster.VDID, series []workload.Sample, sampleEvery int, boost func(sec int) float64, emit func(workload.Event)) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	d := &b.fleet.Topology.VDs[vd]
	m := &b.fleet.Models[vd]
	in, ph := b.member(vd)
	rng := newRand(b.fleet.Cfg.Seed, tagBurstEvents, uint64(vd))
	scanSize := b.scanIOSize()
	if int64(scanSize) > d.Capacity {
		scanSize = int32(alignDown(d.Capacity))
	}
	scanSpan := d.Capacity - int64(scanSize)
	scanPos := alignDown(int64(rng.Float64() * float64(scanSpan)))
	scanIOPS := b.cfg.ScanBps / float64(scanSize)

	baseSize := func(mean float64) int32 {
		s := int64(mean)
		if s < sectorSize {
			s = sectorSize
		}
		if s > 4<<20 {
			s = 4 << 20
		}
		return int32(alignDown(s))
	}
	rdSize, wrSize := baseSize(m.ReadIOSize), baseSize(m.WriteIOSize)

	for t, s := range series {
		mult := 1.0
		if boost != nil {
			mult = boost(t)
		}
		wave := in && b.inWave(t, ph)
		scanLambda := 0.0
		if wave {
			scanLambda = scanIOPS
		}
		sc := countFor(rng, mult*scanLambda/float64(sampleEvery))
		rc := countFor(rng, mult*(s.ReadIOPS-scanLambda)/float64(sampleEvery))
		wc := countFor(rng, mult*s.WriteIOPS/float64(sampleEvery))
		total := sc + rc + wc
		if total == 0 {
			continue
		}
		if total > maxEventsPerSec {
			scale := float64(maxEventsPerSec) / float64(total)
			sc = int(float64(sc) * scale)
			rc = int(float64(rc) * scale)
			wc = int(float64(wc) * scale)
			total = sc + rc + wc
			if total == 0 {
				continue
			}
		}
		gapUS := 1e6 / float64(total)
		for k := 0; k < total; k++ {
			var ev workload.Event
			ev.TimeUS = int64(float64(t)*1e6 + float64(k)*gapUS)
			// Scan IOs first within the second: the synchronized front is
			// the point of the scenario.
			switch {
			case sc > 0:
				sc--
				ev.Op = trace.OpRead
				ev.Size = scanSize
				ev.Offset = scanPos
				scanPos += int64(scanSize)
				if scanPos > scanSpan {
					scanPos = 0
				}
			case rc > 0 && (wc == 0 || rng.Float64()*float64(rc+wc) < float64(rc)):
				rc--
				ev.Op = trace.OpRead
				ev.Size = rdSize
				ev.Offset = b.uniformOffset(rng, d.Capacity, rdSize)
			default:
				wc--
				ev.Op = trace.OpWrite
				ev.Size = wrSize
				ev.Offset = b.uniformOffset(rng, d.Capacity, wrSize)
			}
			ev.QP = d.QPs[rng.Intn(len(d.QPs))]
			emit(ev)
		}
	}
}

// uniformOffset draws an aligned offset whose IO fits inside the VD.
func (b *batchBurst) uniformOffset(rng interface{ Float64() float64 }, capacity int64, size int32) int64 {
	span := capacity - int64(size)
	if span <= 0 {
		return 0
	}
	return alignDown(int64(rng.Float64() * float64(span)))
}
