// Package scenario_test runs the scenario library end to end through the
// real engine: determinism oracles, golden fixtures, and the chaos/control
// composition acceptance runs all live here (the external test package is
// what lets these tests import ebs without an import cycle).
package scenario_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ebslab/internal/chaos"
	"ebslab/internal/control"
	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/scenario"
	"ebslab/internal/sketch"
	"ebslab/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures under testdata/golden")

// scenarioFleet is the shared small fleet every scenario test binds to.
func scenarioFleet(t testing.TB) *workload.Fleet {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = 7
	cfg.DCs = 1
	cfg.NodesPerDC = 2
	cfg.BSPerDC = 6
	cfg.BSPerCluster = 3
	cfg.Users = 6
	cfg.DurationSec = 12
	f, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return f
}

func bindSpec(t testing.TB, f *workload.Fleet, spec string) scenario.Workload {
	t.Helper()
	built, err := scenario.Build(spec)
	if err != nil {
		t.Fatalf("Build(%q): %v", spec, err)
	}
	wl, err := built.Bind(f)
	if err != nil {
		t.Fatalf("Bind(%q): %v", spec, err)
	}
	return wl
}

// goldenSpecs is the full scenario matrix the golden fixture and the
// determinism oracle walk: every registered scenario, including both replay
// schemas via the committed sample traces.
var goldenSpecs = []struct{ label, spec string }{
	{"bufferbloat", "bufferbloat,period=8,duty=0.5"},
	{"batchburst", "batchburst,wave=6,width=2"},
	{"elastic", "elastic,hi=2,lo=0.5,step=3"},
	{"replay-msr", "replay,path=testdata/msr_sample.csv"},
	{"replay-tianchi", "replay,path=testdata/tianchi_sample.csv"},
}

func runSpec(t testing.TB, spec string, workers int) (*ebs.Options, string, *sketch.Set) {
	t.Helper()
	f := scenarioFleet(t)
	wl := bindSpec(t, f, spec)
	set := sketch.NewSet(sketch.Config{})
	opts := ebs.Options{
		DurationSec:      12,
		TraceSampleEvery: 1,
		EventSampleEvery: 2,
		MaxVDs:           12,
		Workers:          workers,
		Stream:           set,
		Scenario:         wl,
	}
	if es, ok := wl.(interface{ EventSampleEvery() int }); ok {
		opts.EventSampleEvery = es.EventSampleEvery()
	}
	ds, err := ebs.New(f).Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("Run(%q): %v", spec, err)
	}
	if len(ds.Trace) == 0 {
		t.Fatalf("Run(%q): empty trace", spec)
	}
	return &opts, invariant.Fingerprint(ds), set
}

// TestWorkerCountInvariance is the determinism oracle from the scenario
// contract: every scenario's dataset fingerprint must be identical at any
// worker count, because all per-VD randomness is derived from
// (seed, scenario tag, VD) and never from scheduling order.
func TestWorkerCountInvariance(t *testing.T) {
	for _, tc := range goldenSpecs {
		t.Run(tc.label, func(t *testing.T) {
			_, fp1, sk1 := runSpec(t, tc.spec, 1)
			_, fp4, sk4 := runSpec(t, tc.spec, 4)
			if fp1 != fp4 {
				t.Errorf("dataset fingerprint differs across worker counts:\n  1 worker  %s\n  4 workers %s", fp1, fp4)
			}
			if sk1.Fingerprint() != sk4.Fingerprint() {
				t.Errorf("sketch fingerprint differs across worker counts")
			}
		})
	}
}

// goldenEntry pins one scenario's headline numbers. Floats are rendered
// through JSON with full precision: any drift at all is a contract change.
type goldenEntry struct {
	Spec      string // canonical spec string
	DatasetFP string
	IOs       int
	CCR1      float64
	NormCoV   float64
	LatP99    float64
}

// TestGoldenScenarios pins each scenario's dataset fingerprint and headline
// sketch statistics to testdata/golden/scenarios.json. Regenerate with
// `go test ./internal/scenario -run TestGolden -update` after an intentional
// change and commit the diff alongside it.
func TestGoldenScenarios(t *testing.T) {
	got := map[string]goldenEntry{}
	for _, tc := range goldenSpecs {
		f := scenarioFleet(t)
		wl := bindSpec(t, f, tc.spec)
		_, fp, set := runSpec(t, tc.spec, 2)
		sk := set.Skewness()
		got[tc.label] = goldenEntry{
			Spec:      wl.Spec(),
			DatasetFP: fp,
			IOs:       int(sk.IOs),
			CCR1:      sk.CCR1,
			NormCoV:   sk.NormCoV,
			LatP99:    sk.LatencyP99,
		}
	}
	path := filepath.Join("testdata", "golden", "scenarios.json")
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	if *updateGolden {
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no fixture %s (run with -update to create): %v", path, err)
	}
	if string(want) != string(blob) {
		t.Errorf("scenario goldens drifted from %s; rerun with -update if intended\n got: %s\nwant: %s", path, blob, want)
	}
}

// TestScenarioChaosControlAcceptance is the issue's composition acceptance:
// a scenario run end to end under a chaos plan AND under the predictive
// control policy, with the invariant suite on throughout.
func TestScenarioChaosControlAcceptance(t *testing.T) {
	f := scenarioFleet(t)
	wl := bindSpec(t, f, "elastic,hi=2,step=3")
	var cst chaos.Stats
	opts := ebs.Options{
		DurationSec:      12,
		TraceSampleEvery: 1,
		EventSampleEvery: 4,
		MaxVDs:           12,
		Check:            true,
		Scenario:         wl,
		Chaos: &chaos.Plan{
			Seed:        7,
			BSCrashes:   2,
			MeanDownSec: 3,
			Storms:      2,
			StormFactor: 4,
			Recoverable: true,
		},
		ChaosStats: &cst,
	}
	pol, err := control.ByName("predictive")
	if err != nil {
		t.Fatal(err)
	}
	ds, plan, err := ebs.New(f).RunControlled(context.Background(), opts, pol, control.Config{EpochSec: 3})
	if err != nil {
		t.Fatalf("RunControlled(elastic + chaos + predictive): %v", err)
	}
	if len(ds.Trace) == 0 {
		t.Fatal("controlled scenario run produced no trace")
	}
	if len(plan.BSLoad) == 0 {
		t.Fatal("controlled scenario run observed no epochs")
	}
	// The same scenario+chaos combination must also hold up uncontrolled.
	opts2 := opts
	opts2.ChaosStats = &chaos.Stats{}
	if _, err := ebs.New(f).Run(context.Background(), opts2); err != nil {
		t.Fatalf("Run(elastic + chaos + check): %v", err)
	}
}

// TestScenarioReshapesTraffic sanity-checks that binding a scenario actually
// changes what the engine observes relative to the fleet's native traffic.
func TestScenarioReshapesTraffic(t *testing.T) {
	f := scenarioFleet(t)
	base := ebs.Options{DurationSec: 8, TraceSampleEvery: 1, EventSampleEvery: 4, MaxVDs: 8}
	native, err := ebs.New(f).Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	// elastic needs a cap floor low enough to actually clip this small
	// fleet's demand (peaks around 0.2% of the base caps), otherwise its
	// dataset legitimately matches native.
	for _, spec := range []string{"bufferbloat", "batchburst", "elastic,lo=0.0001,step=2"} {
		opts := base
		opts.Scenario = bindSpec(t, f, spec)
		ds, err := ebs.New(f).Run(context.Background(), opts)
		if err != nil {
			t.Fatalf("Run(%s): %v", spec, err)
		}
		if invariant.Fingerprint(ds) == invariant.Fingerprint(native) {
			t.Errorf("%s: scenario dataset is identical to the native run", spec)
		}
	}
}

func TestParseSpecCanonical(t *testing.T) {
	sp, err := scenario.ParseSpec("Bufferbloat, duty=0.5 ,period=16")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sp.String(), "bufferbloat,duty=0.5,period=16"; got != want {
		t.Errorf("canonical spec %q, want %q", got, want)
	}
	for _, bad := range []string{"", ",duty=1", "bufferbloat,duty", "bufferbloat,duty=1,duty=2", "bufferbloat,=3"} {
		if _, err := scenario.ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): accepted", bad)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	for _, bad := range []string{
		"quakestorm",
		"bufferbloat,bogus=1",
		"bufferbloat,duty=1.5",
		"bufferbloat,period=0",
		"bufferbloat,idle=-1",
		"batchburst,wave=0",
		"batchburst,width=0",
		"batchburst,iosizekb=0",
		"batchburst,cohort=2",
		"elastic,step=0",
		"elastic,lo=0",
		"elastic,lo=1.5",
		"elastic,hi=0.5",
		"replay",
		"replay,path=x,sample=0",
		"replay,path=x,schema=bogus",
		"replay,path=x,timescale=0",
	} {
		if _, err := scenario.Build(bad); err == nil {
			t.Errorf("Build(%q): accepted", bad)
		}
	}
	for _, good := range []string{
		"bufferbloat",
		"batchburst,stagger=2",
		"elastic,hi=16",
		"replay,path=x,sample=3200,schema=msr,timescale=0.5",
	} {
		if _, err := scenario.Build(good); err != nil {
			t.Errorf("Build(%q): %v", good, err)
		}
	}
	if got := scenario.Names(); len(got) != 4 {
		t.Errorf("registry lists %d scenarios, want 4: %v", len(got), got)
	}
	if !scenario.Known("replay") || scenario.Known("quakestorm") {
		t.Error("Known misreports the registry")
	}
}

// TestBindRejectsNilFleet pins the bind-time contract shared by every
// scenario.
func TestBindRejectsNilFleet(t *testing.T) {
	built, err := scenario.Build("bufferbloat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.Bind(nil); err == nil {
		t.Fatal("Bind(nil) accepted")
	}
}
