package scenario

import (
	"fmt"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// BufferbloatConfig shapes the bufferbloat scenario: every VD oscillates
// between near-idle and saturation on a square wave, overdriving a deep
// device-side queue whose standing backlog adds a queue-depth-aware latency
// term at the BlockServer stage. The per-VD wave phase is seed-derived, so
// the fleet's oscillations interleave rather than beat in lockstep.
type BufferbloatConfig struct {
	// PeriodSec is the wave period (default 24).
	PeriodSec int
	// Duty is the saturated fraction of each period (default 0.35).
	Duty float64
	// Overdrive is the saturated demand as a multiple of the device drain
	// rate (default 2.5; must exceed 1 for a queue to build).
	Overdrive float64
	// Drain is the device service rate as a fraction of the VD throughput
	// cap (default 1.0).
	Drain float64
	// QueueSec caps the device queue at this many seconds of drain — the
	// "deep queue" that turns overload into seconds of sojourn time instead
	// of loss (default 4).
	QueueSec float64
	// Idle is the off-phase demand as a fraction of drain (default 0.02).
	Idle float64
}

func buildBufferbloat(sp Spec) (config, error) {
	c := BufferbloatConfig{PeriodSec: 24, Duty: 0.35, Overdrive: 2.5, Drain: 1.0, QueueSec: 4, Idle: 0.02}
	p := newParams(sp)
	p.Int("period", &c.PeriodSec)
	p.Float("duty", &c.Duty)
	p.Float("overdrive", &c.Overdrive)
	p.Float("drain", &c.Drain)
	p.Float("queue", &c.QueueSec)
	p.Float("idle", &c.Idle)
	if err := p.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate rejects parameter values that have no meaning.
func (c BufferbloatConfig) Validate() error {
	switch {
	case c.PeriodSec < 2:
		return fmt.Errorf("scenario: bufferbloat period %d, want >= 2", c.PeriodSec)
	case c.Duty <= 0 || c.Duty >= 1:
		return fmt.Errorf("scenario: bufferbloat duty %g, want in (0, 1)", c.Duty)
	case c.Overdrive <= 1:
		return fmt.Errorf("scenario: bufferbloat overdrive %g, want > 1 (a queue only builds past saturation)", c.Overdrive)
	case c.Drain <= 0 || c.Drain > 4:
		return fmt.Errorf("scenario: bufferbloat drain %g, want in (0, 4]", c.Drain)
	case c.QueueSec <= 0 || c.QueueSec > 60:
		return fmt.Errorf("scenario: bufferbloat queue %g, want in (0, 60]", c.QueueSec)
	case c.Idle < 0 || c.Idle >= 1:
		return fmt.Errorf("scenario: bufferbloat idle %g, want in [0, 1)", c.Idle)
	}
	return nil
}

func (c BufferbloatConfig) bind(sp Spec, f *workload.Fleet) (Workload, error) {
	return &bufferbloat{spec: sp, cfg: c, fleet: f}, nil
}

// bufferbloat drives the fleet's own event generator (hot/cold LBA model,
// QP weights, IO sizes all stay calibrated) over a replaced demand series,
// and implements DelayModel for the device-queue sojourn term.
type bufferbloat struct {
	spec  Spec
	cfg   BufferbloatConfig
	fleet *workload.Fleet
}

func (b *bufferbloat) Name() string           { return b.spec.Name }
func (b *bufferbloat) Spec() string           { return b.spec.String() }
func (b *bufferbloat) Fleet() *workload.Fleet { return b.fleet }

// drainBps is vd's device service rate in bytes/s.
func (b *bufferbloat) drainBps(vd cluster.VDID) float64 {
	return b.cfg.Drain * b.fleet.Topology.VDs[vd].ThroughputCap
}

// saturated reports whether vd's wave is in its ON phase at second t. The
// phase offset is a pure hash of (seed, vd).
func (b *bufferbloat) saturated(vd cluster.VDID, t int) bool {
	phase := int(hash01(b.fleet.Cfg.Seed, tagBloatPhase, uint64(vd)) * float64(b.cfg.PeriodSec))
	pos := (t + phase) % b.cfg.PeriodSec
	return float64(pos) < b.cfg.Duty*float64(b.cfg.PeriodSec)
}

func (b *bufferbloat) SeriesInto(buf []workload.Sample, vd cluster.VDID, durSec int) []workload.Sample {
	m := &b.fleet.Models[vd]
	drain := b.drainBps(vd)
	// Keep the model's read/write mix so the fleet generator's size and QP
	// draws stay representative.
	readFrac := 0.5
	if tot := m.MeanBps(); tot > 0 {
		readFrac = m.MeanReadBps / tot
	}
	if cap(buf) < durSec {
		buf = make([]workload.Sample, durSec)
	}
	out := buf[:durSec]
	for t := 0; t < durSec; t++ {
		rate := b.cfg.Idle * drain
		if b.saturated(vd, t) {
			rate = b.cfg.Overdrive * drain
		}
		r, w := rate*readFrac, rate*(1-readFrac)
		out[t] = workload.Sample{
			ReadBps: r, WriteBps: w,
			ReadIOPS: r / m.ReadIOSize, WriteIOPS: w / m.WriteIOSize,
		}
	}
	return out
}

func (b *bufferbloat) GenEvents(vd cluster.VDID, series []workload.Sample, sampleEvery int, boost func(sec int) float64, emit func(workload.Event)) {
	b.fleet.GenEventsBoostedOver(vd, series, sampleEvery, boost, emit)
}

// DelaySeries integrates the device queue over the demand series: backlog
// grows by (offered - drain) bytes each second, clamps at QueueSec worth of
// drain, and every IO in second t pays the standing sojourn time
// backlog/drain. The sawtooth this produces — delay ramping through each ON
// phase, draining through each OFF phase — is the bufferbloat signature.
func (b *bufferbloat) DelaySeries(buf []float64, vd cluster.VDID, series []workload.Sample) ([]float64, trace.Stage) {
	drain := b.drainBps(vd)
	if cap(buf) < len(series) {
		buf = make([]float64, len(series))
	}
	out := buf[:len(series)]
	backlog := 0.0
	maxBacklog := b.cfg.QueueSec * drain
	for t, s := range series {
		backlog += s.Bps() - drain
		if backlog < 0 {
			backlog = 0
		}
		if backlog > maxBacklog {
			backlog = maxBacklog
		}
		out[t] = backlog / drain * 1e6 // seconds of sojourn, in µs
	}
	return out, trace.StageBlockServer
}
