package scenario_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ebslab/internal/control"
	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/scenario"
	"ebslab/internal/trace"
)

// TestReplayNativeRoundTrip is the metamorphic replay oracle: a native run
// traced in full, written out, and replayed back through the engine must
// reproduce the original dataset fingerprint exactly — records, metric rows,
// and all. Both native codecs must satisfy it.
func TestReplayNativeRoundTrip(t *testing.T) {
	f := scenarioFleet(t)
	opts := ebs.Options{
		DurationSec:      8,
		TraceSampleEvery: 1,
		EventSampleEvery: 1,
		MaxVDs:           8,
	}
	orig, err := ebs.New(f).Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	origFP := invariant.Fingerprint(orig)

	write := map[string]func(path string) error{
		"jsonl": func(path string) error {
			fh, err := os.Create(path)
			if err != nil {
				return err
			}
			defer fh.Close()
			return trace.WriteTraceJSONL(fh, orig.Trace)
		},
		"csv": func(path string) error {
			fh, err := os.Create(path)
			if err != nil {
				return err
			}
			defer fh.Close()
			return trace.WriteTraceCSV(fh, orig.Trace)
		},
	}
	for name, save := range write {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "trace."+name)
			if err := save(path); err != nil {
				t.Fatal(err)
			}
			wl := bindSpec(t, f, "replay,path="+path)
			rp := wl.(*scenario.Replay)
			if !rp.SourcesRecords() {
				t.Fatal("native replay must be record-sourced")
			}
			if st := rp.Stats(); st.Records != len(orig.Trace) || st.Kept != len(orig.Trace) {
				t.Fatalf("ingest stats %+v, want all %d records kept", st, len(orig.Trace))
			}
			ropts := opts
			ropts.Scenario = wl
			ropts.EventSampleEvery = rp.EventSampleEvery()
			got, err := ebs.New(f).Run(context.Background(), ropts)
			if err != nil {
				t.Fatal(err)
			}
			if gotFP := invariant.Fingerprint(got); gotFP != origFP {
				t.Errorf("replayed fingerprint %s, original %s", gotFP, origFP)
			}
		})
	}
}

// TestReplayRecordSourceRejectsControl pins the engine-side contract: a
// record-sourced replay carries measured latencies the control plane cannot
// re-actuate, so composing the two must fail loudly.
func TestReplayRecordSourceRejectsControl(t *testing.T) {
	f := scenarioFleet(t)
	orig, err := ebs.New(f).Run(context.Background(), ebs.Options{
		DurationSec: 2, TraceSampleEvery: 1, EventSampleEvery: 8, MaxVDs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceJSONL(fh, orig.Trace); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	wl := bindSpec(t, f, "replay,path="+path)
	opts := ebs.Options{
		DurationSec: 2, TraceSampleEvery: 1, EventSampleEvery: 1,
		Scenario: wl,
	}
	pol, err := control.ByName("reactive")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ebs.New(f).RunControlled(context.Background(), opts, pol, control.Config{EpochSec: 1}); err == nil ||
		!strings.Contains(err.Error(), "control plane") {
		t.Fatalf("record-sourced replay + control: got %v, want control-plane rejection", err)
	}
}

func ingest(t *testing.T, cfg scenario.ReplayConfig, input string) (*scenario.Replay, error) {
	t.Helper()
	if cfg.Schema == "" {
		cfg.Schema = scenario.SchemaAuto
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 1
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	cfg.Path = "test-input"
	return cfg.Ingest(strings.NewReader(input), scenarioFleet(t))
}

func TestReplayForeignSchemas(t *testing.T) {
	msr, err := os.ReadFile(filepath.Join("testdata", "msr_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	tianchi, err := os.ReadFile(filepath.Join("testdata", "tianchi_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name, schema, input string
	}{
		{"msr sniffed", "", string(msr)},
		{"msr explicit", scenario.SchemaMSR, string(msr)},
		{"tianchi sniffed", "", string(tianchi)},
		{"tianchi explicit", scenario.SchemaTianchi, string(tianchi)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rp, err := ingest(t, scenario.ReplayConfig{Schema: tc.schema}, tc.input)
			if err != nil {
				t.Fatal(err)
			}
			if rp.SourcesRecords() {
				t.Error("foreign replay must normalise into events, not records")
			}
			st := rp.Stats()
			if st.Records != 60 || st.Kept != 60 {
				t.Errorf("stats %+v, want 60 records kept", st)
			}
			// Ingest is deterministic: a second pass answers identically.
			again, err := ingest(t, scenario.ReplayConfig{Schema: tc.schema}, tc.input)
			if err != nil {
				t.Fatal(err)
			}
			if again.Stats() != st {
				t.Errorf("second ingest stats %+v, first %+v", again.Stats(), st)
			}
		})
	}
}

func TestReplaySamplingThinsDeterministically(t *testing.T) {
	tianchi, err := os.ReadFile(filepath.Join("testdata", "tianchi_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	full, err := ingest(t, scenario.ReplayConfig{}, string(tianchi))
	if err != nil {
		t.Fatal(err)
	}
	thin, err := ingest(t, scenario.ReplayConfig{SampleEvery: 4}, string(tianchi))
	if err != nil {
		t.Fatal(err)
	}
	if got, all := thin.Stats().Kept, full.Stats().Kept; got >= all || got == 0 {
		t.Errorf("sample=4 kept %d of %d, want a proper nonempty subset", got, all)
	}
	if thin.EventSampleEvery() != 4 {
		t.Errorf("EventSampleEvery = %d, want the ingest rate 4", thin.EventSampleEvery())
	}
	again, err := ingest(t, scenario.ReplayConfig{SampleEvery: 4}, string(tianchi))
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats() != thin.Stats() {
		t.Errorf("sampling is not deterministic: %+v vs %+v", again.Stats(), thin.Stats())
	}
}

// TestReplayRejectsMalformed hardens the foreign decoders: every malformed
// input dies with a positional error, never a silent skip or a panic.
func TestReplayRejectsMalformed(t *testing.T) {
	cases := map[string]struct {
		schema, input string
		wantSub       string
	}{
		"msr wrong column count": {scenario.SchemaMSR, "1,src1,0,Read,0\n", "column"},
		"msr negative timestamp": {scenario.SchemaMSR, "-5,src1,0,Read,0,4096,1\n", "timestamp"},
		"msr negative offset":    {scenario.SchemaMSR, "5,src1,0,Read,-4096,4096,1\n", "offset"},
		"msr zero size":          {scenario.SchemaMSR, "5,src1,0,Read,0,0,1\n", "size"},
		"msr negative size":      {scenario.SchemaMSR, "5,src1,0,Read,0,-1,1\n", "size"},
		// Unparseable first lines are tolerated as column headers, so the
		// op/NaN probes put the malformed row on line 2.
		"msr unknown op":        {scenario.SchemaMSR, "5,src1,0,Read,0,4096,1\n6,src1,0,Flush,0,4096,1\n", "op"},
		"msr non-integer field": {scenario.SchemaMSR, "5,src1,0,Read,zero,4096,1\n", ""},
		"msr NaN timestamp":     {scenario.SchemaMSR, "5,src1,0,Read,0,4096,1\nNaN,src1,0,Read,0,4096,1\n", ""},
		"msr header only":       {scenario.SchemaMSR, "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n", "nothing to simulate"},
		"tianchi wrong columns": {scenario.SchemaTianchi, "0,R,0,512\n", "column"},
		"tianchi negative ts":   {scenario.SchemaTianchi, "0,R,0,512,-1\n", "timestamp"},
		"tianchi zero size":     {scenario.SchemaTianchi, "0,R,0,0,5\n", "size"},
		"tianchi unknown op":    {scenario.SchemaTianchi, "0,R,0,512,5\n1,X,0,512,6\n", "op"},
		"native jsonl garbage":  {scenario.SchemaNativeJSONL, "{nope}\n", ""},
		"native csv garbage":    {scenario.SchemaNativeCSV, "not,a,trace\n", ""},
		"empty input":           {scenario.SchemaAuto, "", ""},
		"unsniffable input":     {scenario.SchemaAuto, "what even is this\n", ""},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ingest(t, scenario.ReplayConfig{Schema: tc.schema}, tc.input)
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	// Positional errors carry the line number of the offending record.
	bad := "1000,src1,0,Read,0,4096,1\n2000,src1,0,Read,0,-1,1\n"
	if _, err := ingest(t, scenario.ReplayConfig{Schema: scenario.SchemaMSR}, bad); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("second-line error lacks its position: %v", err)
	}
}

// TestReplayForeignClamping pins the normalisation rules for records that do
// not fit the target VD: offsets wrap into the disk span sector-aligned,
// sizes round up to 4KiB, and early timestamps clamp to the window start —
// all counted in the ingest stats.
func TestReplayForeignClamping(t *testing.T) {
	// Second record rewinds time; third has a huge offset; fourth a tiny
	// unaligned size.
	input := "0,R,0,512,1000000\n" +
		"1,W,4096,512,999000\n" +
		"2,R,92233720368547758,4096,1000500\n" +
		"3,W,4096,100,1000600\n"
	f := scenarioFleet(t)
	cfg := scenario.ReplayConfig{Path: "test-input", Schema: scenario.SchemaTianchi, SampleEvery: 1, TimeScale: 1}
	rp, err := cfg.Ingest(strings.NewReader(input), f)
	if err != nil {
		t.Fatal(err)
	}
	st := rp.Stats()
	if st.Records != 4 || st.Kept != 4 {
		t.Fatalf("stats %+v, want 4 records kept", st)
	}
	if st.Reordered != 1 {
		t.Errorf("Reordered = %d, want 1 (the rewound timestamp)", st.Reordered)
	}
	if st.Clamped == 0 {
		t.Error("Clamped = 0, want the out-of-span offset counted")
	}
	opts := ebs.Options{DurationSec: 4, TraceSampleEvery: 1, EventSampleEvery: 1, Scenario: rp}
	ds, err := ebs.New(f).Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Trace {
		r := &ds.Trace[i]
		if r.Offset%(4<<10) != 0 {
			t.Errorf("record %d: offset %d not sector-aligned", i, r.Offset)
		}
		if r.Size < 4<<10 || r.Size > 4<<20 {
			t.Errorf("record %d: size %d outside [4KiB, 4MiB]", i, r.Size)
		}
		if r.TimeUS < 0 {
			t.Errorf("record %d: negative time %d", i, r.TimeUS)
		}
	}
}
