package scenario

import (
	"fmt"

	"ebslab/internal/cluster"
	"ebslab/internal/throttle"
	"ebslab/internal/workload"
)

// ElasticConfig shapes the elastic scenario: the fleet's native traffic
// runs unchanged, but every VD's throttle caps step between a low and a
// high multiplier mid-run — the resize/burst-credit churn of elastic volume
// offerings. The step schedule is per-VD phase-shifted, so at any second a
// seed-derived slice of the fleet is squeezed while another is boosted;
// queue-delay oscillation (and its latency signature) follows directly.
type ElasticConfig struct {
	// StepSec is how long each cap level holds (default 20).
	StepSec int
	// Lo and Hi are the cap multipliers the schedule cycles through, as
	// lo, 1, hi, 1, lo, ... (defaults 0.4 and 1.6).
	Lo, Hi float64
}

func buildElastic(sp Spec) (config, error) {
	c := ElasticConfig{StepSec: 20, Lo: 0.4, Hi: 1.6}
	p := newParams(sp)
	p.Int("step", &c.StepSec)
	p.Float("lo", &c.Lo)
	p.Float("hi", &c.Hi)
	if err := p.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate rejects parameter values that have no meaning.
func (c ElasticConfig) Validate() error {
	switch {
	case c.StepSec < 1:
		return fmt.Errorf("scenario: elastic step %d, want >= 1", c.StepSec)
	case c.Lo <= 0 || c.Lo > 1:
		return fmt.Errorf("scenario: elastic lo %g, want in (0, 1]", c.Lo)
	case c.Hi < 1 || c.Hi > 16:
		return fmt.Errorf("scenario: elastic hi %g, want in [1, 16]", c.Hi)
	}
	return nil
}

func (c ElasticConfig) bind(sp Spec, f *workload.Fleet) (Workload, error) {
	return &elastic{spec: sp, cfg: c, fleet: f}, nil
}

// elastic delegates series and events to the fleet (native traffic) and
// implements CapScheduler for the stepped throttle caps.
type elastic struct {
	spec  Spec
	cfg   ElasticConfig
	fleet *workload.Fleet
}

func (e *elastic) Name() string           { return e.spec.Name }
func (e *elastic) Spec() string           { return e.spec.String() }
func (e *elastic) Fleet() *workload.Fleet { return e.fleet }

func (e *elastic) SeriesInto(buf []workload.Sample, vd cluster.VDID, durSec int) []workload.Sample {
	return e.fleet.VDSeriesInto(buf, vd, durSec)
}

func (e *elastic) GenEvents(vd cluster.VDID, series []workload.Sample, sampleEvery int, boost func(sec int) float64, emit func(workload.Event)) {
	e.fleet.GenEventsBoostedOver(vd, series, sampleEvery, boost, emit)
}

// CapsAt returns vd's caps at second t: the base caps scaled by the level
// of the VD's phase-shifted step cycle (lo, 1, hi, 1).
func (e *elastic) CapsAt(vd cluster.VDID, base throttle.Caps, sec int) throttle.Caps {
	cycle := 4 * e.cfg.StepSec
	phase := int(hash01(e.fleet.Cfg.Seed, tagElasticPh, uint64(vd)) * float64(cycle))
	var mult float64
	switch ((sec + phase) % cycle) / e.cfg.StepSec {
	case 0:
		mult = e.cfg.Lo
	case 2:
		mult = e.cfg.Hi
	default:
		mult = 1
	}
	return throttle.Caps{Tput: base.Tput * mult, IOPS: base.IOPS * mult}
}
