package scenario_test

import (
	"strings"
	"sync"
	"testing"

	"ebslab/internal/scenario"
	"ebslab/internal/workload"
)

var fuzzFleet = sync.OnceValues(func() (*workload.Fleet, error) {
	cfg := workload.DefaultConfig()
	cfg.Seed = 7
	cfg.DCs = 1
	cfg.NodesPerDC = 2
	cfg.BSPerDC = 6
	cfg.BSPerCluster = 3
	cfg.Users = 6
	cfg.DurationSec = 12
	return workload.Generate(cfg)
})

// FuzzReplayIngest drives the replay ingester — every schema, sampled and
// unsampled — over arbitrary bytes. The decoders must never panic, and any
// input they accept must obey the ingest invariants: at least one record
// kept, never more kept than parsed, and byte-identical stats on re-ingest
// (determinism is what the golden fixtures stand on).
func FuzzReplayIngest(f *testing.F) {
	seeds := []string{
		"Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n1000,src1,0,Read,0,4096,1\n2000,src1,1,Write,65536,8192,2\n",
		"0,R,0,512,1000000\n1,W,4096,1024,1000500\n2,r,8192,2048,1001000\n",
		"-1,src1,0,Read,0,4096,1\n",
		"0,R,0,512\n",
		"{\"not\":\"a record\"}\n",
		"what even is this\n",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	fleet, err := fuzzFleet()
	if err != nil {
		f.Fatal(err)
	}
	schemas := []string{
		scenario.SchemaAuto, scenario.SchemaNativeJSONL, scenario.SchemaNativeCSV,
		scenario.SchemaMSR, scenario.SchemaTianchi,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, schema := range schemas {
			for _, sample := range []int{1, 3} {
				cfg := scenario.ReplayConfig{Path: "fuzz", Schema: schema, SampleEvery: sample, TimeScale: 1}
				rp, err := cfg.Ingest(strings.NewReader(string(data)), fleet)
				if err != nil {
					continue
				}
				st := rp.Stats()
				if st.Kept < 1 || st.Kept > st.Records {
					t.Fatalf("%s sample=%d: impossible stats %+v", schema, sample, st)
				}
				again, err := cfg.Ingest(strings.NewReader(string(data)), fleet)
				if err != nil {
					t.Fatalf("%s sample=%d: accepted once, rejected on re-ingest: %v", schema, sample, err)
				}
				if again.Stats() != st {
					t.Fatalf("%s sample=%d: non-deterministic ingest: %+v vs %+v", schema, sample, again.Stats(), st)
				}
			}
		}
	})
}
