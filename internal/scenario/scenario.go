// Package scenario is the workload scenario library: a registry of named,
// parameterised traffic shapes plus a foreign-trace replay ingester, all
// expressed against the existing workload/engine contracts so every scenario
// runs unmodified through the columnar trace.Batch hot path — under sketches,
// invariants, chaos, the fabric, the gateway, and the mitigation control
// plane.
//
// A scenario is selected by a spec string, `name` or `name,key=val,...`
// (e.g. "bufferbloat,period=16,duty=0.5"). Build parses and validates the
// spec; Bind attaches the result to a generated fleet, returning a Workload
// the engine consumes via ebs.Options.Scenario. Scenarios replace the
// fleet's native per-second demand series and/or its event generator but
// never its topology: placement, queue pairs, worker threads, and capacity
// all stay fleet-derived, which is what keeps every invariant law and every
// downstream consumer oblivious to where the traffic came from.
//
// Determinism contract: every scenario derives its randomness from
// (fleet seed, scenario tag, VD) splitmix64 streams, with all per-VD mutable
// state local to the generating call — so datasets are byte-identical for
// every worker count, and fingerprints are stable enough to pin in golden
// fixtures. See DESIGN.md, "Scenario library & trace replay".
package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"ebslab/internal/cluster"
	"ebslab/internal/throttle"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// Workload is a bound scenario: a fleet whose traffic is reshaped. The
// engine calls SeriesInto once per VD for the throttle replay and GenEvents
// once per VD for the IO stream; both must be pure functions of
// (fleet seed, vd) so the run is worker-count invariant.
type Workload interface {
	// Name is the scenario's registered name.
	Name() string
	// Spec is the canonical spec string (name,key=val with sorted keys):
	// rebuilding from it reproduces this scenario exactly, which is how the
	// fabric ships scenarios to workers and the gateway content-addresses
	// them.
	Spec() string
	// Fleet is the fleet this scenario is bound to.
	Fleet() *workload.Fleet
	// SeriesInto fills vd's per-second demand series over [0, durSec),
	// replacing the fleet's native series. buf is reused engine scratch.
	SeriesInto(buf []workload.Sample, vd cluster.VDID, durSec int) []workload.Sample
	// GenEvents emits vd's IO event stream over the series SeriesInto
	// produced. sampleEvery thins generation (like the fleet generator);
	// boost is the chaos storm multiplier (nil = 1) — scenarios that
	// synthesize events must honor it so traffic storms keep working.
	GenEvents(vd cluster.VDID, series []workload.Sample, sampleEvery int, boost func(sec int) float64, emit func(workload.Event))
}

// CapScheduler is implemented by scenarios that re-shape per-VD throttle
// caps over time (the elastic scenario). CapsAt must be a pure function of
// its arguments.
type CapScheduler interface {
	CapsAt(vd cluster.VDID, base throttle.Caps, sec int) throttle.Caps
}

// DelayModel is implemented by scenarios that add a latency term derived
// from the demand series (the bufferbloat scenario's device-side queue).
// DelaySeries returns per-second extra latency in microseconds plus the
// stage it lands on; buf is reused engine scratch.
type DelayModel interface {
	DelaySeries(buf []float64, vd cluster.VDID, series []workload.Sample) ([]float64, trace.Stage)
}

// RecordSource is implemented by scenarios that carry fully-formed trace
// records (native-schema replay): the engine appends them to the batch
// pipeline verbatim — preserving measured latencies and placement — instead
// of generating events. SourcesRecords reports whether this instance
// actually is record-sourced (a foreign-schema replay is not: it normalises
// into events and takes the generated path).
type RecordSource interface {
	SourcesRecords() bool
	// Records returns vd's record stream in input order. The returned slice
	// is read-only shared state; callers must not mutate it.
	Records(vd cluster.VDID) []trace.Record
}

// Spec is the parsed form of a scenario spec string.
type Spec struct {
	Name   string
	Params map[string]string
}

// ParseSpec parses "name" or "name,key=val,...". Keys and the name are
// lower-cased; duplicate keys are rejected.
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ",")
	name := strings.ToLower(strings.TrimSpace(parts[0]))
	if name == "" {
		return Spec{}, fmt.Errorf("scenario: empty scenario name in spec %q", s)
	}
	sp := Spec{Name: name, Params: map[string]string{}}
	for _, kv := range parts[1:] {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		eq := strings.IndexByte(kv, '=')
		if eq <= 0 {
			return Spec{}, fmt.Errorf("scenario: parameter %q in spec %q: want key=val", kv, s)
		}
		k := strings.ToLower(strings.TrimSpace(kv[:eq]))
		if _, dup := sp.Params[k]; dup {
			return Spec{}, fmt.Errorf("scenario: duplicate parameter %q in spec %q", k, s)
		}
		sp.Params[k] = strings.TrimSpace(kv[eq+1:])
	}
	return sp, nil
}

// String renders the canonical spec: name, then parameters sorted by key.
func (sp Spec) String() string {
	if len(sp.Params) == 0 {
		return sp.Name
	}
	keys := make([]string, 0, len(sp.Params))
	for k := range sp.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(sp.Name)
	for _, k := range keys {
		b.WriteByte(',')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(sp.Params[k])
	}
	return b.String()
}

// config is one scenario's validated parameter struct, ready to bind.
type config interface {
	// Validate rejects parameter values that have no meaning.
	Validate() error
	// bind attaches the config to a generated fleet.
	bind(spec Spec, f *workload.Fleet) (Workload, error)
}

// builder parses a Spec's parameters into a scenario config.
type builder func(sp Spec) (config, error)

// registry maps scenario names to their builders. Registration is static —
// scenarios are code, not plugins — so lookups need no locking.
var registry = map[string]builder{
	"bufferbloat": buildBufferbloat,
	"batchburst":  buildBatchBurst,
	"elastic":     buildElastic,
	"replay":      buildReplay,
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Known reports whether name is a registered scenario.
func Known(name string) bool { _, ok := registry[name]; return ok }

// Built is a parsed and validated scenario, not yet attached to a fleet.
// One Built may be bound to any number of fleets (the fabric binds the same
// spec on every worker).
type Built struct {
	spec Spec
	cfg  config
}

// Build parses and validates a spec string.
func Build(specStr string) (*Built, error) {
	sp, err := ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	mk, ok := registry[sp.Name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %s)", sp.Name, strings.Join(Names(), ", "))
	}
	cfg, err := mk(sp)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Built{spec: sp, cfg: cfg}, nil
}

// Name returns the scenario's registered name.
func (b *Built) Name() string { return b.spec.Name }

// Spec returns the canonical spec string.
func (b *Built) Spec() string { return b.spec.String() }

// Bind attaches the scenario to a generated fleet, producing the Workload
// the engine runs. Replay scenarios do their (streaming) trace ingest here.
func (b *Built) Bind(f *workload.Fleet) (Workload, error) {
	if f == nil {
		return nil, fmt.Errorf("scenario: Bind needs a generated fleet")
	}
	return b.cfg.bind(b.spec, f)
}

// params walks a Spec's key=val pairs with typed accessors, collecting the
// first error and rejecting unknown keys once every known key was declared.
type params struct {
	sp   Spec
	seen map[string]bool
	err  error
}

func newParams(sp Spec) *params { return &params{sp: sp, seen: map[string]bool{}} }

func (p *params) raw(key string) (string, bool) {
	p.seen[key] = true
	v, ok := p.sp.Params[key]
	return v, ok
}

// Str reads a string parameter.
func (p *params) Str(key string, dst *string) {
	if v, ok := p.raw(key); ok {
		*dst = v
	}
}

// Int reads an integer parameter.
func (p *params) Int(key string, dst *int) {
	v, ok := p.raw(key)
	if !ok || p.err != nil {
		return
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.err = fmt.Errorf("scenario: parameter %s=%q: want an integer", key, v)
		return
	}
	*dst = n
}

// Float reads a float parameter.
func (p *params) Float(key string, dst *float64) {
	v, ok := p.raw(key)
	if !ok || p.err != nil {
		return
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.err = fmt.Errorf("scenario: parameter %s=%q: want a number", key, v)
		return
	}
	*dst = x
}

// Err returns the first parse error, or an unknown-key error naming the
// accepted keys.
func (p *params) Err() error {
	if p.err != nil {
		return p.err
	}
	for k := range p.sp.Params {
		if !p.seen[k] {
			known := make([]string, 0, len(p.seen))
			for s := range p.seen {
				known = append(known, s)
			}
			sort.Strings(known)
			return fmt.Errorf("scenario: %s has no parameter %q (have %s)", p.sp.Name, k, strings.Join(known, ", "))
		}
	}
	return nil
}

// Derived-RNG plumbing: scenarios split the fleet seed per (tag, entity)
// exactly like the workload layer, but under their own tags so a scenario
// never perturbs (or reuses) a fleet stream.
const (
	tagBloatPhase  = 0xB10A7
	tagBurstMember = 0xBB3E5
	tagBurstEvents = 0xBB3E6
	tagElasticPh   = 0xE1A57
	tagReplayPick  = 0x4E91A
)

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// subSeed derives an independent stream seed from (master, tag, entity).
func subSeed(master int64, tag, entity uint64) int64 {
	return int64(splitmix64(uint64(master) ^ splitmix64(tag)<<1 ^ splitmix64(entity)))
}

// hash01 maps (master, tag, entity) to a uniform [0, 1) value without
// consuming any stream state.
func hash01(master int64, tag, entity uint64) float64 {
	return float64(uint64(subSeed(master, tag, entity))>>11) / float64(1<<53)
}

// newRand builds a fresh derived rand stream. Scenario generators hold all
// per-VD mutable state (including RNG position) in the generating call, so
// re-running a VD reproduces it bit for bit.
func newRand(master int64, tag, entity uint64) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(master, tag, entity)))
}

// sectorSize mirrors the workload layer's alignment quantum.
const sectorSize = 4 << 10

// alignDown rounds x down to the sector boundary (never below zero).
func alignDown(x int64) int64 {
	a := x &^ (sectorSize - 1)
	if a < 0 {
		return 0
	}
	return a
}

// countFor turns a fractional expected count into an integer count by
// flooring and adding a Bernoulli remainder, preserving the mean (the same
// convention as the fleet generator).
func countFor(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	n := int(lambda)
	if rng.Float64() < lambda-float64(n) {
		n++
	}
	return n
}

// maxEventsPerSec mirrors the workload layer's per-second generation cap.
const maxEventsPerSec = 1 << 20
