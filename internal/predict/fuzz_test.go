package predict

import (
	"math"
	"testing"
)

// seriesFromBytes decodes fuzz bytes into a finite traffic series: two
// bytes per point, one for the mantissa (signed, so robustness to negative
// inputs is covered even though traffic is non-negative) and one for a
// decimal exponent spanning twelve orders of magnitude in each direction.
func seriesFromBytes(data []byte) []float64 {
	const maxPoints = 96
	var out []float64
	for i := 0; i+1 < len(data) && len(out) < maxPoints; i += 2 {
		mant := float64(int(data[i]) - 128)
		exp := int(data[i+1])%25 - 12
		out = append(out, mant*math.Pow(10, float64(exp)))
	}
	return out
}

// FuzzEvaluatePredictors walks every prediction method over arbitrary
// finite series and asserts the package contract: no panics, and every
// forecast is finite and non-negative (the clamp all methods apply, since
// traffic cannot be negative). Evaluate may reject a series with an error;
// it must never crash on one.
func FuzzEvaluatePredictors(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{255, 24, 0, 24, 255, 0, 0, 0, 128, 12, 127, 24}) // extremes
	f.Add([]byte{130, 12, 130, 12, 130, 12, 130, 12, 130, 12})    // constant
	f.Add([]byte{128, 0, 129, 0, 130, 0, 131, 0, 132, 0, 133, 0}) // linear ramp
	f.Fuzz(func(t *testing.T, data []byte) {
		series := seriesFromBytes(data)
		if len(series) < 6 {
			return
		}
		predictors := []Predictor{
			&Naive{},
			NewLinearFit(5),
			NewHolt(),
			&EWMA{},
			NewARIMA(2, 1),
			NewGBT(4, 8, 2, 0.3),
			NewAttention(4, 16),
		}
		for _, p := range predictors {
			res, err := Evaluate(p, series, 4, 2)
			if err != nil {
				t.Fatalf("%s: Evaluate rejected a finite series: %v", p.Name(), err)
			}
			for i, v := range res.Preds {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: non-finite forecast %v at step %d", p.Name(), v, i)
				}
				if _, isNaive := p.(*Naive); !isNaive && v < 0 {
					t.Fatalf("%s: negative forecast %v at step %d", p.Name(), v, i)
				}
			}
		}
	})
}
