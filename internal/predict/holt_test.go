package predict

import (
	"math"
	"testing"
)

func TestHoltTracksTrend(t *testing.T) {
	series := linearSeries(80) // 3 + 2t
	h := NewHolt()
	if err := h.Fit(series); err != nil {
		t.Fatal(err)
	}
	want := 3 + 2*float64(80)
	got := h.Predict()
	if math.Abs(got-want) > 8 {
		t.Fatalf("holt trend forecast = %v, want ~%v", got, want)
	}
}

func TestHoltShortHistory(t *testing.T) {
	h := NewHolt()
	h.Fit([]float64{5})
	if got := h.Predict(); got != 5 {
		t.Fatalf("singleton predict = %v", got)
	}
	h.Fit(nil)
	if h.Predict() != 0 {
		t.Fatal("empty history should predict 0")
	}
}

func TestHoltClampsExplosiveForecast(t *testing.T) {
	h := NewHolt()
	// Steep ramp: the trend extrapolation is clamped at 1.5x the max.
	h.Fit([]float64{0, 0, 0, 100})
	if got := h.Predict(); got > 150+1e-9 {
		t.Fatalf("forecast %v above clamp", got)
	}
}

func TestHoltPinnedParameters(t *testing.T) {
	h := &Holt{Alpha: 0.5, Beta: 0.1}
	series := ar1Series(100, 3)
	if err := h.Fit(series); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(h.Predict()) {
		t.Fatal("NaN forecast")
	}
}

func TestHoltBeatsNaiveOnTrend(t *testing.T) {
	series := make([]float64, 120)
	for i := range series {
		series[i] = float64(i) * 3
	}
	resH, err := Evaluate(NewHolt(), series, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	resN, _ := Evaluate(&Naive{}, series, 20, 1)
	if !(resH.MSE < resN.MSE) {
		t.Fatalf("holt MSE %v not below naive %v on a pure trend", resH.MSE, resN.MSE)
	}
}

func TestEWMA(t *testing.T) {
	e := &EWMA{}
	if e.Name() == "" {
		t.Fatal("empty name")
	}
	e.Fit([]float64{10, 10, 10})
	if got := e.Predict(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("constant series EWMA = %v", got)
	}
	e.Fit(nil)
	if e.Predict() != 0 {
		t.Fatal("empty EWMA should predict 0")
	}
	// Alpha clamping.
	bad := &EWMA{Alpha: 5}
	if bad.alpha() != 0.3 {
		t.Fatalf("alpha fallback = %v", bad.alpha())
	}
	// Smoother than naive on noise around a level.
	series := ar1Series(300, 5)
	resE, err := Evaluate(&EWMA{Alpha: 0.3}, series, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(resE.MSE) {
		t.Fatal("NaN MSE")
	}
}
