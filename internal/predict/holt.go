package predict

import (
	"fmt"
	"math"
)

// Holt is double exponential smoothing (Holt's linear trend method) — a
// representative of the "standard methods" [23, 45] the paper reports as
// insufficient for EBS traffic prediction. Smoothing parameters are tuned
// by grid search on the training series at every Fit.
type Holt struct {
	// Alpha and Beta, when positive, pin the smoothing parameters;
	// otherwise Fit grid-searches them.
	Alpha, Beta float64

	level, trend float64
	fitted       bool
	maxSeen      float64
}

// NewHolt returns an auto-tuned Holt forecaster.
func NewHolt() *Holt { return &Holt{} }

// Name implements Predictor.
func (h *Holt) Name() string { return "holt" }

// Fit implements Predictor.
func (h *Holt) Fit(history []float64) error {
	h.fitted = false
	if len(history) == 0 {
		h.level, h.trend = 0, 0
		return nil
	}
	h.maxSeen = 0
	for _, x := range history {
		if x > h.maxSeen {
			h.maxSeen = x
		}
	}
	if len(history) < 3 {
		h.level, h.trend = history[len(history)-1], 0
		h.fitted = true
		return nil
	}
	alphas := []float64{h.Alpha}
	betas := []float64{h.Beta}
	if h.Alpha <= 0 {
		alphas = []float64{0.1, 0.3, 0.5, 0.8}
	}
	if h.Beta <= 0 {
		betas = []float64{0.01, 0.1, 0.3}
	}
	best := math.Inf(1)
	for _, a := range alphas {
		for _, b := range betas {
			level, trend, sse := holtRun(history, a, b)
			if sse < best {
				best = sse
				h.level, h.trend = level, trend
			}
		}
	}
	h.fitted = true
	return nil
}

// holtRun smooths the series with (alpha, beta) and returns the final level
// and trend plus the one-step-ahead SSE.
func holtRun(xs []float64, alpha, beta float64) (level, trend, sse float64) {
	level = xs[0]
	trend = xs[1] - xs[0]
	for t := 1; t < len(xs); t++ {
		pred := level + trend
		d := xs[t] - pred
		sse += d * d
		newLevel := alpha*xs[t] + (1-alpha)*(level+trend)
		trend = beta*(newLevel-level) + (1-beta)*trend
		level = newLevel
	}
	return level, trend, sse
}

// Predict implements Predictor.
func (h *Holt) Predict() float64 {
	if !h.fitted {
		return 0
	}
	pred := h.level + h.trend
	if h.maxSeen > 0 && pred > 1.5*h.maxSeen {
		pred = 1.5 * h.maxSeen
	}
	return clampNonNeg(pred)
}

// EWMA is single exponential smoothing — the simplest standard baseline.
type EWMA struct {
	// Alpha in (0,1]; 0 selects 0.3.
	Alpha float64
	level float64
}

// Name implements Predictor.
func (e *EWMA) Name() string { return fmt.Sprintf("ewma(%.2f)", e.alpha()) }

func (e *EWMA) alpha() float64 {
	if e.Alpha <= 0 || e.Alpha > 1 {
		return 0.3
	}
	return e.Alpha
}

// Fit implements Predictor.
func (e *EWMA) Fit(history []float64) error {
	if len(history) == 0 {
		e.level = 0
		return nil
	}
	a := e.alpha()
	e.level = history[0]
	for _, x := range history[1:] {
		e.level = a*x + (1-a)*e.level
	}
	return nil
}

// Predict implements Predictor.
func (e *EWMA) Predict() float64 { return clampNonNeg(e.level) }
