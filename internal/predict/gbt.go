package predict

import (
	"fmt"
	"math"
)

// GBT is a gradient-boosted regression-tree forecaster over lag features —
// the stand-in for Appendix C's XGBoost/GradientBoostingRegressor. Each
// round fits a depth-limited CART tree to the residuals of the ensemble so
// far (squared loss makes residuals the exact gradients), shrunk by the
// learning rate.
type GBT struct {
	// Lags is the number of trailing values used as features (the paper
	// feeds 120 s of history to predict 30 s, i.e. 4 lags of periods).
	Lags int
	// Trees is the boosting round count.
	Trees int
	// Depth bounds each tree.
	Depth int
	// LearningRate shrinks each tree's contribution.
	LearningRate float64

	base    float64
	forest  []*treeNode
	lastWin []float64
}

// NewGBT returns a boosted-tree predictor with sane defaults for any
// non-positive argument (4 lags, 60 trees, depth 3, rate 0.1).
func NewGBT(lags, trees, depth int, rate float64) *GBT {
	if lags <= 0 {
		lags = 4
	}
	if trees <= 0 {
		trees = 60
	}
	if depth <= 0 {
		depth = 3
	}
	if rate <= 0 {
		rate = 0.1
	}
	return &GBT{Lags: lags, Trees: trees, Depth: depth, LearningRate: rate}
}

// Name implements Predictor.
func (g *GBT) Name() string {
	return fmt.Sprintf("gbt(lags=%d,trees=%d,depth=%d)", g.Lags, g.Trees, g.Depth)
}

// treeNode is one node of a regression tree; leaves have feat == -1.
type treeNode struct {
	feat        int
	thresh      float64
	value       float64
	left, right *treeNode
}

func (n *treeNode) eval(x []float64) float64 {
	for n.feat >= 0 {
		if x[n.feat] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Fit implements Predictor: build the training matrix of lag windows and
// boost trees against residuals.
func (g *GBT) Fit(history []float64) error {
	g.forest = g.forest[:0]
	g.lastWin = nil
	n := len(history) - g.Lags
	if len(history) > 0 {
		// The prediction window is always the most recent Lags values
		// (zero-padded when history is short).
		g.lastWin = make([]float64, g.Lags)
		for i := 0; i < g.Lags && i < len(history); i++ {
			g.lastWin[i] = history[len(history)-1-i]
		}
	}
	if n <= 0 {
		if len(history) > 0 {
			g.base = history[len(history)-1]
		} else {
			g.base = 0
		}
		return nil
	}
	// features[t][i] = value at lag i+1 before target t.
	features := make([][]float64, n)
	targets := make([]float64, n)
	for t := 0; t < n; t++ {
		row := make([]float64, g.Lags)
		for i := 0; i < g.Lags; i++ {
			row[i] = history[t+g.Lags-1-i]
		}
		features[t] = row
		targets[t] = history[t+g.Lags]
	}
	var mean float64
	for _, y := range targets {
		mean += y
	}
	mean /= float64(n)
	g.base = mean

	resid := make([]float64, n)
	for i, y := range targets {
		resid[i] = y - mean
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for round := 0; round < g.Trees; round++ {
		tree := buildTree(features, resid, idx, g.Depth)
		if tree == nil {
			break
		}
		g.forest = append(g.forest, tree)
		for i := range resid {
			resid[i] -= g.LearningRate * tree.eval(features[i])
		}
	}
	return nil
}

// Predict implements Predictor.
func (g *GBT) Predict() float64 {
	if g.lastWin == nil {
		return clampNonNeg(g.base)
	}
	pred := g.base
	for _, tree := range g.forest {
		pred += g.LearningRate * tree.eval(g.lastWin)
	}
	return clampNonNeg(pred)
}

// buildTree grows a CART regression tree on the index subset by exhaustive
// split search minimizing squared error. It returns nil when the subset is
// degenerate.
func buildTree(features [][]float64, resid []float64, idx []int, depth int) *treeNode {
	if len(idx) == 0 {
		return nil
	}
	var sum float64
	for _, i := range idx {
		sum += resid[i]
	}
	mean := sum / float64(len(idx))
	if depth == 0 || len(idx) < 4 {
		return &treeNode{feat: -1, value: mean}
	}
	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	var baseSSE float64
	for _, i := range idx {
		d := resid[i] - mean
		baseSSE += d * d
	}
	nFeat := len(features[idx[0]])
	for f := 0; f < nFeat; f++ {
		// Candidate thresholds: quartile-ish probes keep the search cheap.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := features[i][f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		for probe := 1; probe <= 7; probe++ {
			th := lo + (hi-lo)*float64(probe)/8
			var sL, sR float64
			var nL, nR int
			for _, i := range idx {
				if features[i][f] <= th {
					sL += resid[i]
					nL++
				} else {
					sR += resid[i]
					nR++
				}
			}
			if nL == 0 || nR == 0 {
				continue
			}
			// SSE reduction = sL^2/nL + sR^2/nR - sum^2/n.
			gain := sL*sL/float64(nL) + sR*sR/float64(nR) - sum*sum/float64(len(idx))
			if gain > bestGain {
				bestFeat, bestThresh, bestGain = f, th, gain
			}
		}
	}
	if bestFeat < 0 || bestGain <= 1e-12*(1+baseSSE) {
		return &treeNode{feat: -1, value: mean}
	}
	var left, right []int
	for _, i := range idx {
		if features[i][bestFeat] <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &treeNode{
		feat:   bestFeat,
		thresh: bestThresh,
		left:   buildTree(features, resid, left, depth-1),
		right:  buildTree(features, resid, right, depth-1),
	}
}
