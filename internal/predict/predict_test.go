package predict

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// linearSeries is y = 3 + 2t.
func linearSeries(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 3 + 2*float64(i)
	}
	return out
}

// ar1Series generates x_t = 0.8 x_{t-1} + noise around a level.
func ar1Series(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	x := 10.0
	for i := range out {
		x = 2 + 0.8*x + 0.5*rng.NormFloat64()
		out[i] = x
	}
	return out
}

func TestNaive(t *testing.T) {
	var n Naive
	if err := n.Fit([]float64{1, 2, 7}); err != nil {
		t.Fatal(err)
	}
	if n.Predict() != 7 {
		t.Fatalf("naive = %v, want 7", n.Predict())
	}
	n.Fit(nil)
	if n.Predict() != 0 {
		t.Fatal("naive on empty history should be 0")
	}
	if n.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestLinearFitExact(t *testing.T) {
	lf := NewLinearFit(4)
	series := linearSeries(10)
	if err := lf.Fit(series); err != nil {
		t.Fatal(err)
	}
	want := 3 + 2*float64(10)
	if got := lf.Predict(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("linear predict = %v, want %v", got, want)
	}
}

func TestLinearFitShortHistory(t *testing.T) {
	lf := NewLinearFit(4)
	lf.Fit([]float64{5})
	if got := lf.Predict(); got != 5 {
		t.Fatalf("singleton history predict = %v, want 5", got)
	}
	lf.Fit(nil)
	if got := lf.Predict(); got != 0 {
		t.Fatalf("empty history predict = %v, want 0", got)
	}
}

func TestLinearFitClampsNegative(t *testing.T) {
	lf := NewLinearFit(4)
	lf.Fit([]float64{30, 20, 10, 0})
	if got := lf.Predict(); got != 0 {
		t.Fatalf("downward trend should clamp at 0, got %v", got)
	}
}

func TestNewLinearFitFloorsWindow(t *testing.T) {
	if NewLinearFit(0).Window != 2 {
		t.Fatal("window floor not applied")
	}
}

func TestARIMARecoversAR1(t *testing.T) {
	series := ar1Series(400, 1)
	a := NewARIMA(4, 1)
	if err := a.Fit(series); err != nil {
		t.Fatal(err)
	}
	// One-step forecasts should beat the naive random walk on an AR(1).
	resA, err := Evaluate(NewARIMA(4, 1), series, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	resN, err := Evaluate(&Naive{}, series, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resA.MSE >= resN.MSE {
		t.Fatalf("ARIMA MSE %v not below naive %v on AR(1)", resA.MSE, resN.MSE)
	}
}

func TestARIMAHandlesTrend(t *testing.T) {
	// A pure trend needs differencing; with d=1 allowed the forecast should
	// track closely.
	series := linearSeries(60)
	a := NewARIMA(3, 1)
	a.Fit(series)
	want := 3 + 2*float64(60)
	if got := a.Predict(); math.Abs(got-want) > 1.0 {
		t.Fatalf("trend forecast = %v, want ~%v", got, want)
	}
}

func TestARIMAShortHistory(t *testing.T) {
	a := NewARIMA(4, 1)
	a.Fit([]float64{5, 6})
	if got := a.Predict(); math.IsNaN(got) {
		t.Fatal("short-history forecast is NaN")
	}
	a.Fit(nil)
	if got := a.Predict(); got != 0 {
		t.Fatalf("empty forecast = %v", got)
	}
}

func TestDifference(t *testing.T) {
	xs := []float64{1, 3, 6, 10}
	d1 := difference(xs, 1)
	want := []float64{2, 3, 4}
	for i := range want {
		if d1[i] != want[i] {
			t.Fatalf("d1 = %v", d1)
		}
	}
	d2 := difference(xs, 2)
	if len(d2) != 2 || d2[0] != 1 || d2[1] != 1 {
		t.Fatalf("d2 = %v", d2)
	}
	if difference([]float64{1}, 1) != nil {
		t.Fatal("over-differencing should be nil")
	}
	d0 := difference(xs, 0)
	if len(d0) != 4 {
		t.Fatal("d0 should copy input")
	}
}

func TestSolveSPD(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x := solveSPD(a, b)
	if x == nil || math.Abs(x[0]-1) > 1e-6 || math.Abs(x[1]-3) > 1e-6 {
		t.Fatalf("solveSPD = %v", x)
	}
	// Singular (up to ridge) system still returns something finite or nil.
	s := solveSPD([][]float64{{0, 0}, {0, 0}}, []float64{1, 1})
	if s != nil {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("singular solve returned non-finite %v", s)
			}
		}
	}
}

func TestGBTLearnsSwitchingPattern(t *testing.T) {
	// A deterministic regime pattern that lag features capture but a naive
	// forecaster cannot: x alternates 0,0,10 cyclically.
	series := make([]float64, 240)
	for i := range series {
		if i%3 == 2 {
			series[i] = 10
		}
	}
	resG, err := Evaluate(NewGBT(4, 60, 3, 0.1), series, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	resN, _ := Evaluate(&Naive{}, series, 60, 1)
	if resG.MSE >= resN.MSE/4 {
		t.Fatalf("GBT MSE %v should be far below naive %v on periodic pattern", resG.MSE, resN.MSE)
	}
}

func TestGBTShortHistory(t *testing.T) {
	g := NewGBT(4, 10, 2, 0.1)
	g.Fit([]float64{7})
	if got := g.Predict(); got != 7 {
		t.Fatalf("short history predict = %v, want 7", got)
	}
	g.Fit(nil)
	if g.Predict() != 0 {
		t.Fatal("empty history should predict 0")
	}
}

func TestGBTDefaults(t *testing.T) {
	g := NewGBT(0, 0, 0, 0)
	if g.Lags != 4 || g.Trees != 60 || g.Depth != 3 || g.LearningRate != 0.1 {
		t.Fatalf("defaults = %+v", g)
	}
}

func TestAttentionLearnsRepeatedMotif(t *testing.T) {
	// Period-5 motif; attention should retrieve the matching past windows.
	motif := []float64{1, 4, 9, 2, 7}
	series := make([]float64, 300)
	for i := range series {
		series[i] = motif[i%5]
	}
	resA, err := Evaluate(NewAttention(4, 0), series, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resA.MSE > 0.5 {
		t.Fatalf("attention MSE %v too high on exact motif", resA.MSE)
	}
}

func TestAttentionStaleFitMissesRegimeShift(t *testing.T) {
	// Regime shifts halfway; a per-epoch (stale) fit must do worse than a
	// per-period fit — the Figure 4(c) P4 vs P5 effect.
	rng := rand.New(rand.NewSource(42))
	series := make([]float64, 400)
	for i := range series {
		base := 5.0
		if i >= 200 {
			base = 50
		}
		series[i] = base + rng.Float64()
	}
	fresh, err := Evaluate(NewAttention(4, 0), series, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := Evaluate(NewAttention(4, 0), series, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.MSE >= stale.MSE {
		t.Fatalf("per-period MSE %v should beat per-epoch MSE %v", fresh.MSE, stale.MSE)
	}
}

func TestAttentionShortHistory(t *testing.T) {
	a := NewAttention(4, 16)
	a.Fit([]float64{3})
	if got := a.Predict(); got != 3 {
		t.Fatalf("short predict = %v, want 3", got)
	}
	a.Fit(nil)
	if a.Predict() != 0 {
		t.Fatal("empty predict should be 0")
	}
}

func TestAttentionCorpusCap(t *testing.T) {
	a := NewAttention(2, 8)
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i)
	}
	a.Fit(series)
	if len(a.keys) != 8 {
		t.Fatalf("corpus size %d, want cap 8", len(a.keys))
	}
}

func TestEvaluateValidation(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		name       string
		series     []float64
		warmup     int
		refitEvery int
		wantErr    string // substring of the error, "" = must succeed
	}{
		{"warmup zero", series, 0, 1, "warmup 0"},
		{"warmup one", series, 1, 1, "warmup 1"},
		{"warmup negative", series, -3, 1, "warmup -3"},
		{"warmup == len", series, 5, 1, "leaves no steps"},
		{"warmup past end", series, 9, 1, "leaves no steps"},
		{"refit zero", series, 2, 0, "refitEvery 0"},
		{"refit negative", series, 2, -2, "refitEvery -2"},
		{"valid", series, 2, 1, ""},
		{"valid stale refits", series, 2, 3, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Evaluate(&Naive{}, tc.series, tc.warmup, tc.refitEvery)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("Evaluate(warmup=%d, refitEvery=%d) accepted", tc.warmup, tc.refitEvery)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Preds) != 3 || len(res.Truth) != 3 {
				t.Fatalf("evaluation lengths: %d/%d", len(res.Preds), len(res.Truth))
			}
			// Naive on 1..5 refit each step: each prediction is the
			// previous value, error 1 each (stale refits drift further).
			if tc.refitEvery == 1 && math.Abs(res.MSE-1) > 1e-12 {
				t.Fatalf("naive MSE = %v, want 1", res.MSE)
			}
		})
	}
}

func TestPredictorNames(t *testing.T) {
	for _, p := range []Predictor{
		NewLinearFit(4), NewARIMA(4, 1), NewGBT(4, 10, 2, 0.1), NewAttention(4, 64), &Naive{},
	} {
		if p.Name() == "" {
			t.Fatalf("%T has empty name", p)
		}
	}
}

func TestClampNonNeg(t *testing.T) {
	if clampNonNeg(-1) != 0 || clampNonNeg(math.NaN()) != 0 || clampNonNeg(math.Inf(1)) != 0 {
		t.Fatal("clamp failed")
	}
	if clampNonNeg(3) != 3 {
		t.Fatal("clamp altered valid value")
	}
}

func TestWindowPadding(t *testing.T) {
	w := window([]float64{1, 2, 3}, 2, 4)
	// Values preceding index 2, most recent first: 2, 1, pad, pad.
	if w[0] != 2 || w[1] != 1 || w[2] != 0 || w[3] != 0 {
		t.Fatalf("window = %v", w)
	}
}
