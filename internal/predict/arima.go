package predict

import (
	"fmt"
	"math"
)

// ARIMA is an autoregressive integrated model AR(p) over a d-times
// differenced series, fitted by conditional least squares. Orders are found
// automatically by AIC over p in [1, MaxP] and d in [0, MaxD], mimicking
// Appendix C's pmdarima auto-search. (The moving-average term is omitted:
// for one-step traffic forecasting, AR+I captures the structure the paper's
// comparison relies on, and CLS keeps the fit exact and dependency-free.)
type ARIMA struct {
	// MaxP and MaxD bound the order search.
	MaxP, MaxD int

	p, d  int
	coef  []float64 // AR coefficients, coef[0] is lag-1; last entry intercept
	hist  []float64
	valid bool
}

// NewARIMA returns an auto-order ARIMA predictor with the given search
// bounds (the paper's setup is well covered by MaxP=4, MaxD=1).
func NewARIMA(maxP, maxD int) *ARIMA {
	if maxP < 1 {
		maxP = 1
	}
	if maxD < 0 {
		maxD = 0
	}
	return &ARIMA{MaxP: maxP, MaxD: maxD}
}

// Name implements Predictor.
func (a *ARIMA) Name() string { return fmt.Sprintf("arima(maxp=%d,maxd=%d)", a.MaxP, a.MaxD) }

// Fit implements Predictor: search (p, d) by AIC and keep the best CLS fit.
func (a *ARIMA) Fit(history []float64) error {
	a.hist = append(a.hist[:0], history...)
	a.valid = false
	bestAIC := math.Inf(1)
	for d := 0; d <= a.MaxD; d++ {
		diffed := difference(history, d)
		for p := 1; p <= a.MaxP; p++ {
			if len(diffed) < p+2 {
				continue
			}
			coef, rss, n := fitAR(diffed, p)
			if coef == nil || n <= p+1 {
				continue
			}
			// AIC = n ln(rss/n) + 2k with k = p+1 parameters.
			variance := rss / float64(n)
			if variance <= 0 {
				variance = 1e-300
			}
			aic := float64(n)*math.Log(variance) + 2*float64(p+1)
			if aic < bestAIC {
				bestAIC = aic
				a.p, a.d, a.coef = p, d, coef
				a.valid = true
			}
		}
	}
	return nil
}

// Predict implements Predictor: forecast the differenced series one step,
// then integrate d times.
func (a *ARIMA) Predict() float64 {
	if !a.valid || len(a.hist) == 0 {
		if len(a.hist) > 0 {
			return clampNonNeg(a.hist[len(a.hist)-1])
		}
		return 0
	}
	diffed := difference(a.hist, a.d)
	if len(diffed) < a.p {
		return clampNonNeg(a.hist[len(a.hist)-1])
	}
	// One-step AR forecast on the differenced series.
	pred := a.coef[a.p] // intercept
	for i := 0; i < a.p; i++ {
		pred += a.coef[i] * diffed[len(diffed)-1-i]
	}
	// Integrate: add back the last values of each differencing level.
	for lvl := a.d - 1; lvl >= 0; lvl-- {
		base := difference(a.hist, lvl)
		pred += base[len(base)-1]
	}
	// Guard against explosive AR roots: a one-step traffic forecast far
	// outside the observed range is never credible.
	var hi float64
	for _, x := range a.hist {
		if x > hi {
			hi = x
		}
	}
	if pred > 1.5*hi {
		pred = 1.5 * hi
	}
	return clampNonNeg(pred)
}

// difference applies d rounds of first differencing.
func difference(xs []float64, d int) []float64 {
	out := append([]float64(nil), xs...)
	for i := 0; i < d; i++ {
		if len(out) < 2 {
			return nil
		}
		next := make([]float64, len(out)-1)
		for j := 1; j < len(out); j++ {
			next[j-1] = out[j] - out[j-1]
		}
		out = next
	}
	return out
}

// fitAR fits x_t = c + sum_i coef_i * x_{t-i} by least squares over all
// conditioning windows. It returns the coefficients (lag order, intercept
// last), the residual sum of squares, and the number of equations.
func fitAR(xs []float64, p int) (coef []float64, rss float64, n int) {
	n = len(xs) - p
	if n <= 0 {
		return nil, 0, 0
	}
	k := p + 1 // p lags + intercept
	// Normal equations: (X'X) beta = X'y.
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	row := make([]float64, k)
	for t := p; t < len(xs); t++ {
		for i := 0; i < p; i++ {
			row[i] = xs[t-1-i]
		}
		row[p] = 1
		y := xs[t]
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y
		}
	}
	coef = solveSPD(xtx, xty)
	if coef == nil {
		return nil, 0, 0
	}
	for t := p; t < len(xs); t++ {
		pred := coef[p]
		for i := 0; i < p; i++ {
			pred += coef[i] * xs[t-1-i]
		}
		r := xs[t] - pred
		rss += r * r
	}
	return coef, rss, n
}

// solveSPD solves Ax = b by Gaussian elimination with partial pivoting and
// a tiny ridge for numerical safety. It returns nil for singular systems.
func solveSPD(a [][]float64, b []float64) []float64 {
	k := len(b)
	// Work on copies with ridge regularization.
	m := make([][]float64, k)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		m[i][i] += 1e-9 * (1 + math.Abs(a[i][i]))
	}
	x := append([]float64(nil), b...)
	for col := 0; col < k; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < k; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := k - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < k; c++ {
			s -= m[col][c] * x[c]
		}
		x[col] = s / m[col][col]
	}
	return x
}
