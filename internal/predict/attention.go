package predict

import (
	"fmt"
	"math"
)

// Attention is a softmax attention regressor — the stdlib-only stand-in for
// Appendix C's PyTorch Transformer. The query is the current lag window;
// keys are every historical lag window; values are the observations that
// followed them. The forecast is the softmax-weighted average of the
// values,
//
//	pred = sum_i softmax(-||q - k_i||^2 / (tau * s^2 * sqrt(d)))_i * v_i
//
// i.e. one attention head whose compatibility function is the RBF kernel
// (squared distance) rather than a learned-projection dot product — with
// identity projections, distance is the retrieval-correct score. The
// temperature tau is the single trained parameter, chosen by leave-one-out
// grid search during Fit. Like the paper's Transformer, the model memorizes
// the training corpus at fit time, so a stale per-epoch fit cannot see
// recent regime shifts — reproducing the P4-vs-P5 cadence effect of
// Figure 4(c).
type Attention struct {
	// Lags is the window length of queries and keys.
	Lags int
	// MaxKeys caps the memorized corpus (most recent windows win).
	MaxKeys int

	tau     float64
	keys    [][]float64
	vals    []float64
	norm    float64 // feature scale used to normalize dot products
	lastWin []float64
	fallbck float64
}

// NewAttention returns an attention regressor with the given window (4 if
// non-positive) and corpus cap (512 if non-positive).
func NewAttention(lags, maxKeys int) *Attention {
	if lags <= 0 {
		lags = 4
	}
	if maxKeys <= 0 {
		maxKeys = 512
	}
	return &Attention{Lags: lags, MaxKeys: maxKeys}
}

// Name implements Predictor.
func (a *Attention) Name() string { return fmt.Sprintf("attention(lags=%d)", a.Lags) }

// Fit implements Predictor: memorize (window, next) pairs and tune tau.
func (a *Attention) Fit(history []float64) error {
	a.keys = a.keys[:0]
	a.vals = a.vals[:0]
	a.lastWin = nil
	a.fallbck = 0
	if len(history) > 0 {
		a.fallbck = history[len(history)-1]
		a.lastWin = window(history, len(history), a.Lags)
	}
	n := len(history) - a.Lags
	if n <= 1 {
		return nil
	}
	start := 0
	if n > a.MaxKeys {
		start = n - a.MaxKeys
	}
	var scale float64
	for t := start; t < n; t++ {
		k := window(history, t+a.Lags, a.Lags)
		a.keys = append(a.keys, k)
		a.vals = append(a.vals, history[t+a.Lags])
		for _, x := range k {
			scale += x * x
		}
	}
	a.norm = math.Sqrt(scale/float64(len(a.keys))) + 1e-12
	// Grid-search tau by leave-one-out error on the memorized corpus.
	best, bestErr := 1.0, math.Inf(1)
	for _, tau := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2, 4} {
		var sse float64
		for i := range a.keys {
			pred := a.attend(a.keys[i], tau, i)
			d := pred - a.vals[i]
			sse += d * d
		}
		if sse < bestErr {
			best, bestErr = tau, sse
		}
	}
	a.tau = best
	return nil
}

// Predict implements Predictor.
func (a *Attention) Predict() float64 {
	if len(a.keys) == 0 || a.lastWin == nil {
		return clampNonNeg(a.fallbck)
	}
	return clampNonNeg(a.attend(a.lastWin, a.tau, -1))
}

// attend computes the softmax-weighted value average for query q, excluding
// corpus index skip (for leave-one-out tuning; pass -1 to use everything).
func (a *Attention) attend(q []float64, tau float64, skip int) float64 {
	d := math.Sqrt(float64(a.Lags))
	// Normalize scores by the corpus feature scale so tau is unitless.
	denom := tau * d * a.norm * a.norm
	if denom == 0 {
		denom = 1
	}
	maxScore := math.Inf(-1)
	scores := make([]float64, len(a.keys))
	for i, k := range a.keys {
		if i == skip {
			scores[i] = math.Inf(-1)
			continue
		}
		var dist float64
		for j := range k {
			d := q[j] - k[j]
			dist += d * d
		}
		scores[i] = -dist / denom
		if scores[i] > maxScore {
			maxScore = scores[i]
		}
	}
	if math.IsInf(maxScore, -1) {
		return a.fallbck
	}
	var wsum, vsum float64
	for i, s := range scores {
		if math.IsInf(s, -1) {
			continue
		}
		w := math.Exp(s - maxScore)
		wsum += w
		vsum += w * a.vals[i]
	}
	if wsum == 0 {
		return a.fallbck
	}
	return vsum / wsum
}

// window returns the Lags values preceding index end (end exclusive),
// most-recent first, zero-padded on underflow.
func window(xs []float64, end, lags int) []float64 {
	w := make([]float64, lags)
	for i := 0; i < lags; i++ {
		j := end - 1 - i
		if j >= 0 {
			w[i] = xs[j]
		}
	}
	return w
}
