package predict

import "fmt"

// LinearFit forecasts by ordinary least squares over the last Window points
// against their time index, extrapolating one step — Appendix C's
// "LinearRegression ... from the past four migration periods" and the core
// of Lunule's importer selection.
type LinearFit struct {
	// Window is how many trailing points to regress over (4 in the paper).
	Window int

	slope, intercept float64
	n                int // points actually used in the last fit
}

// NewLinearFit returns a linear-fit predictor over the given window.
func NewLinearFit(window int) *LinearFit {
	if window < 2 {
		window = 2
	}
	return &LinearFit{Window: window}
}

// Name implements Predictor.
func (l *LinearFit) Name() string { return fmt.Sprintf("linear-fit(w=%d)", l.Window) }

// Fit implements Predictor.
func (l *LinearFit) Fit(history []float64) error {
	w := l.Window
	if len(history) < w {
		w = len(history)
	}
	pts := history[len(history)-w:]
	l.n = len(pts)
	if l.n == 0 {
		l.slope, l.intercept = 0, 0
		return nil
	}
	if l.n == 1 {
		l.slope, l.intercept = 0, pts[0]
		return nil
	}
	// OLS of y against x = 0..n-1.
	var sx, sy, sxx, sxy float64
	for i, y := range pts {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(l.n)
	den := n*sxx - sx*sx
	if den == 0 {
		l.slope, l.intercept = 0, sy/n
		return nil
	}
	l.slope = (n*sxy - sx*sy) / den
	l.intercept = (sy - l.slope*sx) / n
	return nil
}

// Predict implements Predictor: extrapolate to x = n (one step past the
// window).
func (l *LinearFit) Predict() float64 {
	return clampNonNeg(l.intercept + l.slope*float64(l.n))
}
