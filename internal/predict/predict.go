// Package predict implements the traffic-prediction methods the paper
// evaluates for the inter-BS balancer (§6.1.3, Appendix C): a linear fit
// over the last few periods, an ARIMA model with automatic order search,
// gradient-boosted regression trees over lag features (the XGBoost
// stand-in), and a dot-product attention regressor (the Transformer
// stand-in). All are written from scratch on the standard library.
//
// The Evaluate driver walks a series one period at a time, refitting each
// model on its own cadence — per period for the statistical models, per
// epoch (every 200 periods in the paper) for the learned ones — and scores
// one-step-ahead forecasts by mean squared error, which is exactly the
// Figure 4(c) protocol.
package predict

import (
	"fmt"
	"math"

	"ebslab/internal/stats"
)

// Predictor is a one-step-ahead forecaster. Fit may be called repeatedly
// with growing history; Predict forecasts the value following the last
// fitted point.
type Predictor interface {
	// Name identifies the method in reports.
	Name() string
	// Fit trains on history, oldest first. Implementations must tolerate
	// short histories (falling back to naive forecasts).
	Fit(history []float64) error
	// Predict returns the forecast for the next step.
	Predict() float64
}

// EvalResult reports a walk-forward evaluation.
type EvalResult struct {
	Name  string
	Preds []float64 // predictions for steps [warmup, len(series))
	Truth []float64
	MSE   float64
	// NormMSE is MSE divided by the variance of the evaluated truth, so
	// methods can be compared across series scales (1.0 = as bad as
	// predicting the mean).
	NormMSE float64
}

// Evaluate runs walk-forward validation: for each t in [warmup, len(series)),
// the predictor is fitted on series[:t] — but only every refitEvery steps
// (stale fits emulate the paper's per-epoch retraining) — and asked for a
// one-step forecast of series[t].
func Evaluate(p Predictor, series []float64, warmup, refitEvery int) (EvalResult, error) {
	if warmup < 2 {
		return EvalResult{}, fmt.Errorf("predict: warmup %d, want >= 2 (a forecaster needs at least two points of history)", warmup)
	}
	if warmup >= len(series) {
		return EvalResult{}, fmt.Errorf("predict: warmup %d leaves no steps to evaluate in a %d-point series, want warmup < len(series)", warmup, len(series))
	}
	if refitEvery < 1 {
		return EvalResult{}, fmt.Errorf("predict: refitEvery %d, want >= 1 (the fit cadence in steps)", refitEvery)
	}
	res := EvalResult{Name: p.Name()}
	lastFit := -1
	for t := warmup; t < len(series); t++ {
		if lastFit < 0 || t-lastFit >= refitEvery {
			if err := p.Fit(series[:t]); err != nil {
				return EvalResult{}, fmt.Errorf("predict: fit %s at %d: %w", p.Name(), t, err)
			}
			lastFit = t
		}
		res.Preds = append(res.Preds, p.Predict())
		res.Truth = append(res.Truth, series[t])
	}
	res.MSE = stats.MSE(res.Preds, res.Truth)
	if v := stats.Variance(res.Truth); v > 0 {
		res.NormMSE = res.MSE / v
	} else {
		res.NormMSE = math.NaN()
	}
	return res, nil
}

// Naive predicts the last observed value (random-walk baseline).
type Naive struct {
	last float64
}

// Name implements Predictor.
func (n *Naive) Name() string { return "naive" }

// Fit implements Predictor.
func (n *Naive) Fit(history []float64) error {
	if len(history) == 0 {
		n.last = 0
		return nil
	}
	n.last = history[len(history)-1]
	return nil
}

// Predict implements Predictor.
func (n *Naive) Predict() float64 { return n.last }

// clampNonNeg replaces negative or non-finite forecasts with a floor of 0;
// traffic cannot be negative.
func clampNonNeg(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		return 0
	}
	return x
}
