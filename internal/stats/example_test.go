package stats_test

import (
	"fmt"

	"ebslab/internal/stats"
)

// The paper's spatial-skew measure: the share of traffic carried by the
// top 1% of entities.
func ExampleCCR() {
	traffic := make([]float64, 100)
	traffic[0] = 80 // one whale
	for i := 1; i < 100; i++ {
		traffic[i] = 0.2
	}
	fmt.Printf("1%%-CCR = %.1f%%\n", 100*stats.CCR(traffic, 0.01))
	// Output: 1%-CCR = 80.2%
}

// The paper's temporal-burstiness measure: peak over mean of a series.
func ExampleP2A() {
	series := []float64{1, 1, 1, 1, 16}
	fmt.Printf("P2A = %.1f\n", stats.P2A(series))
	// Output: P2A = 4.0
}

// The normalized coefficient of variation is 1 when all traffic sits on a
// single worker thread.
func ExampleNormCoV() {
	wt := []float64{100, 0, 0, 0}
	fmt.Printf("WT-CoV = %.2f\n", stats.NormCoV(wt))
	// Output: WT-CoV = 1.00
}

// Equation 2: +1 is pure write, -1 pure read.
func ExampleWrRatio() {
	fmt.Printf("%.2f %.2f\n", stats.WrRatio(2, 1), stats.WrRatio(0, 5))
	// Output: 0.33 -1.00
}
