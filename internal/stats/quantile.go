package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the "type 7" estimator used by
// numpy and R). It returns NaN for an empty slice or q outside [0,1],
// including q = NaN (which a plain range check would let through into an
// undefined float-to-int conversion).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || !(q >= 0 && q <= 1) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the q-quantile of an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	w := pos - float64(lo)
	return sorted[lo]*(1-w) + sorted[hi]*w
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantiles returns the quantiles of xs at every q in qs, sorting xs once.
func Quantiles(xs []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		if !(q >= 0 && q <= 1) { // also catches q = NaN
			out[i] = math.NaN()
			continue
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// CDFPoint is one point of an empirical CDF: Fraction of samples <= Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical cumulative distribution function of xs as a
// sorted list of (value, fraction) points, one per sample. The result is nil
// for an empty input.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / n}
	}
	return out
}

// CDFAt returns the fraction of samples in xs that are <= v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var c int
	for _, x := range xs {
		if x <= v {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// FractionWhere returns the fraction of samples satisfying pred. It returns
// NaN for an empty slice.
func FractionWhere(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var c int
	for _, x := range xs {
		if pred(x) {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Histogram bins xs into nbins equal-width bins over [min, max] and returns
// the per-bin counts plus the bin edges (nbins+1 values). Samples equal to
// max land in the last bin. It returns (nil, nil) when xs is empty or nbins
// is non-positive; a degenerate range (min == max) puts everything in bin 0.
func Histogram(xs []float64, nbins int) (counts []int, edges []float64) {
	if len(xs) == 0 || nbins <= 0 {
		return nil, nil
	}
	lo, hi := Min(xs), Max(xs)
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	edges[nbins] = hi
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - lo) / width)
			if b >= nbins {
				b = nbins - 1
			}
		}
		counts[b]++
	}
	return counts, edges
}

// DropNaN returns xs with NaN values removed (always a fresh slice).
func DropNaN(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			out = append(out, x)
		}
	}
	return out
}
