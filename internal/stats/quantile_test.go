package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Quantile of singleton = %v, want 7", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64 // NaN means "must be NaN"
	}{
		{"empty slice", nil, 0.5, math.NaN()},
		{"empty slice q=0", []float64{}, 0, math.NaN()},
		{"single sample q=0", []float64{7}, 0, 7},
		{"single sample q=0.5", []float64{7}, 0.5, 7},
		{"single sample q=1", []float64{7}, 1, 7},
		{"q below range", []float64{1, 2, 3}, -0.01, math.NaN()},
		{"q above range", []float64{1, 2, 3}, 1.01, math.NaN()},
		{"q negative infinity", []float64{1, 2, 3}, math.Inf(-1), math.NaN()},
		{"q positive infinity", []float64{1, 2, 3}, math.Inf(1), math.NaN()},
		{"q NaN", []float64{1, 2, 3}, math.NaN(), math.NaN()},
		{"q NaN single sample", []float64{7}, math.NaN(), math.NaN()},
		{"exact endpoints", []float64{3, 1, 2}, 1, 3},
	}
	for _, c := range cases {
		got := Quantile(c.xs, c.q)
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: Quantile = %v, want NaN", c.name, got)
			}
		} else if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%s: Quantile = %v, want %v", c.name, got, c.want)
		}
		// Quantiles must agree with Quantile case by case (shared sort path).
		batch := Quantiles(c.xs, []float64{c.q})
		if math.IsNaN(got) != math.IsNaN(batch[0]) ||
			(!math.IsNaN(got) && !almostEqual(got, batch[0], 1e-12)) {
			t.Errorf("%s: Quantiles = %v disagrees with Quantile = %v", c.name, batch[0], got)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantilesMatchQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 137)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	qs := []float64{0, 0.01, 0.5, 0.9, 0.99, 1, -1}
	got := Quantiles(xs, qs)
	for i, q := range qs {
		want := Quantile(xs, q)
		if !almostEqual(got[i], want, 1e-12) {
			t.Errorf("Quantiles[%v] = %v, want %v", q, got[i], want)
		}
	}
}

func TestQuantilePropertyWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		q := rng.Float64()
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("Median(odd) = %v, want 5", got)
	}
	if got := Median([]float64{4, 2}); got != 3 {
		t.Fatalf("Median(even) = %v, want 3", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF length = %d, want 3", len(pts))
	}
	if pts[0].Value != 1 || !almostEqual(pts[0].Fraction, 1.0/3.0, 1e-12) {
		t.Errorf("first CDF point = %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].Fraction != 1 {
		t.Errorf("last CDF point = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value }) {
		t.Error("CDF points not sorted")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Fatalf("CDFAt(0) = %v, want 0", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Fatalf("CDFAt(10) = %v, want 1", got)
	}
	if !math.IsNaN(CDFAt(nil, 1)) {
		t.Fatal("CDFAt(nil) should be NaN")
	}
}

func TestFractionWhere(t *testing.T) {
	xs := []float64{-1, 0, 1, 2}
	got := FractionWhere(xs, func(x float64) bool { return x > 0 })
	if !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("FractionWhere = %v, want 0.5", got)
	}
	if !math.IsNaN(FractionWhere(nil, func(float64) bool { return true })) {
		t.Fatal("FractionWhere(nil) should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if len(counts) != 2 || len(edges) != 3 {
		t.Fatalf("Histogram dims = %d/%d", len(counts), len(edges))
	}
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts = %v, want [2 3]", counts)
	}
	if edges[0] != 0 || edges[2] != 2 {
		t.Fatalf("edges = %v", edges)
	}
	// Degenerate range.
	counts, _ = Histogram([]float64{5, 5, 5}, 4)
	if counts[0] != 3 {
		t.Fatalf("degenerate histogram counts = %v", counts)
	}
	if c, e := Histogram(nil, 3); c != nil || e != nil {
		t.Fatal("Histogram(nil) should be nil,nil")
	}
	if c, e := Histogram([]float64{1}, 0); c != nil || e != nil {
		t.Fatal("Histogram with 0 bins should be nil,nil")
	}
}

func TestHistogramPropertyTotalPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		counts, _ := Histogram(xs, 1+rng.Intn(20))
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDropNaN(t *testing.T) {
	xs := []float64{1, math.NaN(), 2, math.NaN()}
	got := DropNaN(xs)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("DropNaN = %v", got)
	}
}
