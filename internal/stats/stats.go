// Package stats implements the descriptive statistics used throughout the
// EBS traffic study: cumulative contribution rate (CCR), peak-to-average
// ratio (P2A), the normalized coefficient of variation (CoV), quantiles,
// histograms, mean squared error, and the normalized write-to-read ratio.
//
// All functions operate on plain float64 slices and never mutate their
// arguments unless documented otherwise. NaN results indicate an undefined
// statistic (for example the CoV of an all-zero series); callers are expected
// to filter with math.IsNaN where relevant.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoV returns the raw coefficient of variation sigma/mu of xs.
// It returns NaN when xs is empty or its mean is zero.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) || m == 0 {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// NormCoV returns the normalized coefficient of variation used by the paper
// (§4.1): the raw CoV divided by its maximum attainable value sqrt(n-1) for n
// non-negative samples, so the result lies in [0, 1]. A value of 1 means all
// traffic concentrates on a single element; 0 means perfectly even.
//
// NormCoV returns NaN for fewer than two samples or a zero mean.
func NormCoV(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	c := CoV(xs)
	if math.IsNaN(c) {
		return math.NaN()
	}
	return c / math.Sqrt(float64(n-1))
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// P2A returns the peak-to-average ratio of a time series: max(xs)/mean(xs).
// The paper (§3.1) uses P2A to quantify temporal burstiness. It returns NaN
// for an empty series or a zero mean.
func P2A(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) || m == 0 {
		return math.NaN()
	}
	return Max(xs) / m
}

// CCR returns the cumulative contribution rate: the fraction of total mass
// contributed by the top `frac` (0 < frac <= 1) share of elements, e.g.
// CCR(traffic, 0.01) is the paper's "1%-CCR". Elements are ranked in
// descending order. At least one element is always counted when frac > 0.
// It returns NaN for an empty slice, a non-positive total, or frac outside
// (0, 1].
func CCR(xs []float64, frac float64) float64 {
	if len(xs) == 0 || frac <= 0 || frac > 1 {
		return math.NaN()
	}
	total := Sum(xs)
	if total <= 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	k := int(math.Ceil(frac * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return Sum(sorted[:k]) / total
}

// Gini returns the Gini coefficient of xs in [0,1): 0 is perfect equality.
// Negative inputs are not meaningful for traffic and yield unspecified
// results. It returns NaN for an empty slice or zero total.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	total := Sum(xs)
	if total == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum float64
	for i, x := range sorted {
		cum += float64(i+1) * x
	}
	return (2*cum - float64(n+1)*total) / (float64(n) * total)
}

// WrRatio returns the normalized write-to-read ratio (Equation 2 of the
// paper): (W-R)/(W+R), in [-1, 1]. +1 is pure write, -1 pure read. It
// returns NaN when both W and R are zero.
func WrRatio(write, read float64) float64 {
	if write+read == 0 {
		return math.NaN()
	}
	return (write - read) / (write + read)
}

// MSE returns the mean squared error between predictions and truth. The two
// slices must have equal, non-zero length; otherwise MSE returns NaN.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	var ss float64
	for i := range pred {
		d := pred[i] - truth[i]
		ss += d * d
	}
	return ss / float64(len(pred))
}

// AutoCorr returns the lag-k autocorrelation of xs (the normalized
// autocovariance), or NaN for k outside [1, len(xs)-2] or a constant
// series. Traffic predictors only help where this is meaningfully positive.
func AutoCorr(xs []float64, k int) float64 {
	n := len(xs)
	if k < 1 || k > n-2 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
		if i+k < n {
			num += d * (xs[i+k] - m)
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// Pearson returns the Pearson correlation coefficient of xs and ys, or NaN
// for mismatched/empty inputs or zero variance in either series.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
