package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= eps
}

func TestSumMean(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("Sum = %v, want 6.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Fatal("Variance(nil) should be NaN")
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]float64{5, 5, 5}); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("CoV of constant = %v, want 0", got)
	}
	if !math.IsNaN(CoV([]float64{0, 0})) {
		t.Fatal("CoV with zero mean should be NaN")
	}
	if !math.IsNaN(CoV(nil)) {
		t.Fatal("CoV(nil) should be NaN")
	}
}

func TestNormCoVBounds(t *testing.T) {
	// All mass on a single element of n: normalized CoV must be exactly 1.
	for _, n := range []int{2, 4, 10, 100} {
		xs := make([]float64, n)
		xs[0] = 7
		if got := NormCoV(xs); !almostEqual(got, 1, 1e-9) {
			t.Fatalf("NormCoV(single spike, n=%d) = %v, want 1", n, got)
		}
	}
	if got := NormCoV([]float64{3, 3, 3, 3}); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("NormCoV(flat) = %v, want 0", got)
	}
	if !math.IsNaN(NormCoV([]float64{1})) {
		t.Fatal("NormCoV of one sample should be NaN")
	}
}

func TestNormCoVPropertyInUnitInterval(t *testing.T) {
	// Property: for any non-negative, non-degenerate sample, NormCoV in [0,1].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(64)
		xs := make([]float64, n)
		var sum float64
		for i := range xs {
			xs[i] = rng.Float64() * 100
			sum += xs[i]
		}
		if sum == 0 {
			return true
		}
		c := NormCoV(xs)
		return c >= -1e-12 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestP2A(t *testing.T) {
	if got := P2A([]float64{1, 1, 1, 5}); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("P2A = %v, want 2.5", got)
	}
	if got := P2A([]float64{3, 3}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("P2A of constant = %v, want 1", got)
	}
	if !math.IsNaN(P2A([]float64{0, 0})) {
		t.Fatal("P2A with zero mean should be NaN")
	}
}

func TestP2APropertyAtLeastOne(t *testing.T) {
	// Property: P2A >= 1 for non-negative series with positive mean.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() + 0.01
		}
		return P2A(xs) >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCCR(t *testing.T) {
	xs := []float64{10, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	// Top 5% of 20 elements = 1 element = the 10, total = 29.
	if got := CCR(xs, 0.05); !almostEqual(got, 10.0/29.0, 1e-12) {
		t.Fatalf("CCR(5%%) = %v, want %v", got, 10.0/29.0)
	}
	if got := CCR(xs, 1); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("CCR(100%%) = %v, want 1", got)
	}
	if !math.IsNaN(CCR(nil, 0.1)) {
		t.Fatal("CCR(nil) should be NaN")
	}
	if !math.IsNaN(CCR(xs, 0)) || !math.IsNaN(CCR(xs, 1.5)) {
		t.Fatal("CCR with frac outside (0,1] should be NaN")
	}
	if !math.IsNaN(CCR([]float64{0, 0}, 0.5)) {
		t.Fatal("CCR with zero total should be NaN")
	}
}

func TestCCRPropertyMonotone(t *testing.T) {
	// Property: CCR is non-decreasing in frac, bounded by frac-proportionality
	// from below (top-k share >= k/n for a descending ranking).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		a, b := CCR(xs, 0.1), CCR(xs, 0.5)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return a <= b+1e-12 && b <= 1+1e-12 && a >= 0.1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{1, 1, 1, 1}); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("Gini(flat) = %v, want 0", got)
	}
	// All mass on one of n elements: Gini = (n-1)/n.
	xs := make([]float64, 10)
	xs[3] = 42
	if got := Gini(xs); !almostEqual(got, 0.9, 1e-12) {
		t.Fatalf("Gini(spike) = %v, want 0.9", got)
	}
	if !math.IsNaN(Gini(nil)) {
		t.Fatal("Gini(nil) should be NaN")
	}
}

func TestWrRatio(t *testing.T) {
	if got := WrRatio(1, 0); got != 1 {
		t.Fatalf("WrRatio(1,0) = %v, want 1", got)
	}
	if got := WrRatio(0, 1); got != -1 {
		t.Fatalf("WrRatio(0,1) = %v, want -1", got)
	}
	if got := WrRatio(2, 1); !almostEqual(got, 1.0/3.0, 1e-12) {
		t.Fatalf("WrRatio(2,1) = %v, want 1/3", got)
	}
	if !math.IsNaN(WrRatio(0, 0)) {
		t.Fatal("WrRatio(0,0) should be NaN")
	}
}

func TestMSE(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("MSE = %v, want 2", got)
	}
	if !math.IsNaN(MSE([]float64{1}, []float64{1, 2})) {
		t.Fatal("MSE with mismatched lengths should be NaN")
	}
	if !math.IsNaN(MSE(nil, nil)) {
		t.Fatal("MSE(nil,nil) should be NaN")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson(perfect) = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson(anti) = %v, want -1", got)
	}
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1})) {
		t.Fatal("Pearson with zero variance should be NaN")
	}
}

func TestAutoCorr(t *testing.T) {
	// A strongly persistent series has positive lag-1 autocorrelation.
	persistent := make([]float64, 200)
	x := 0.0
	rng := rand.New(rand.NewSource(2))
	for i := range persistent {
		x = 0.95*x + rng.NormFloat64()
		persistent[i] = x
	}
	if got := AutoCorr(persistent, 1); !(got > 0.7) {
		t.Fatalf("AR(0.95) lag-1 autocorr = %v, want > 0.7", got)
	}
	// Alternating series has strongly negative lag-1 autocorrelation.
	alt := make([]float64, 100)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if got := AutoCorr(alt, 1); !(got < -0.9) {
		t.Fatalf("alternating lag-1 autocorr = %v, want < -0.9", got)
	}
	if got := AutoCorr(alt, 2); !(got > 0.9) {
		t.Fatalf("alternating lag-2 autocorr = %v, want > 0.9", got)
	}
	if !math.IsNaN(AutoCorr(alt, 0)) || !math.IsNaN(AutoCorr(alt, 99)) {
		t.Fatal("out-of-range lags should be NaN")
	}
	if !math.IsNaN(AutoCorr([]float64{3, 3, 3, 3}, 1)) {
		t.Fatal("constant series should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
}
