// Scenario regression tests: one fixed (seed, plan) pair is pinned to a
// golden fixture — schedule fingerprint, chaos and fault-free dataset
// fingerprints, fault accounting, and the balancer's failover migration
// log. Regenerate after an intentional change with
//
//	go test ./internal/chaos -run TestGoldenChaosScenario -update
package chaos_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ebslab/internal/balancer"
	"ebslab/internal/chaos"
	"ebslab/internal/cluster"
	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden scenario fixture")

const scenarioSeed = 7

func scenarioFleet(t testing.TB) *workload.Fleet {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = scenarioSeed
	cfg.NodesPerDC = 6
	cfg.DCs = 2
	cfg.BSPerDC = 3
	cfg.BSPerCluster = 3
	cfg.Users = 10
	cfg.DurationSec = 20
	f, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return f
}

func scenarioOpts(workers int) ebs.Options {
	return ebs.Options{
		Seed: scenarioSeed, DurationSec: 12, TraceSampleEvery: 1,
		EventSampleEvery: 4, Workers: workers,
	}
}

// disruptivePlan touches the dataset (penalty + storms) on purpose. Eight
// crash windows over six BSs make it overwhelmingly likely the skewed
// fleet's hot BSs spend time down, so FaultedIOs is non-trivial.
func disruptivePlan() *chaos.Plan {
	return &chaos.Plan{
		BSCrashes: 8, MeanDownSec: 4, FailoverPenaltyUS: 250,
		Storms: 8, StormFactor: 4, MeanStormSec: 4, Recoverable: true,
	}
}

// neutralPlan observes the same crash windows without any dataset-visible
// knob.
func neutralPlan() *chaos.Plan {
	return &chaos.Plan{BSCrashes: 8, MeanDownSec: 4, Recoverable: true}
}

func runScenario(t testing.TB, f *workload.Fleet, plan *chaos.Plan, workers int) (string, chaos.Stats) {
	t.Helper()
	opts := scenarioOpts(workers)
	var st chaos.Stats
	opts.Chaos = plan
	opts.ChaosStats = &st
	ds, err := ebs.New(f).Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	return invariant.Fingerprint(ds), st
}

// scenarioBalancerInputs builds a fixed placement and traffic matrix whose
// failover behaviour the golden fixture pins: 24 segments round-robin over
// the fleet's BSs, the first four hot.
func scenarioBalancerInputs(nBS int) (*cluster.SegmentMap, [][]balancer.RW) {
	const nSegs, nPeriods = 24, 6
	m := cluster.NewSegmentMap(nSegs, nBS)
	traffic := make([][]balancer.RW, nSegs)
	for seg := 0; seg < nSegs; seg++ {
		m.Assign(cluster.SegmentID(seg), cluster.StorageNodeID(seg%nBS))
		traffic[seg] = make([]balancer.RW, nPeriods)
		for p := range traffic[seg] {
			w := 10.0
			if seg < 4 {
				w = 100
			}
			traffic[seg][p] = balancer.RW{W: w, R: 5}
		}
	}
	return m, traffic
}

type scenarioGolden struct {
	ScheduleFP string
	DatasetFP  string
	BaselineFP string
	Stats      chaos.Stats
	Migrations []string
}

func goldenPath() string {
	return filepath.Join("testdata", "golden", "scenario.json")
}

// TestGoldenChaosScenario pins the full chain for one fixed (seed, plan):
// the expanded schedule, the disruptive run's dataset fingerprint and fault
// accounting, the fault-free baseline fingerprint, and the failover
// migration log the schedule induces in the balancer.
func TestGoldenChaosScenario(t *testing.T) {
	f := scenarioFleet(t)
	plan := disruptivePlan()
	shape := chaos.Shape{
		BSs: len(f.Topology.StorageNodes), VDs: len(f.Topology.VDs), DurSec: 12,
	}
	sched := plan.Expand(scenarioSeed, shape)

	got := scenarioGolden{ScheduleFP: sched.Fingerprint()}
	got.DatasetFP, got.Stats = runScenario(t, f, plan, 2)

	baseline, err := ebs.New(f).Run(context.Background(), scenarioOpts(2))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	got.BaselineFP = invariant.Fingerprint(baseline)
	if got.DatasetFP == got.BaselineFP {
		t.Fatal("disruptive plan left the dataset untouched; the scenario pins nothing")
	}

	m, traffic := scenarioBalancerInputs(shape.BSs)
	downFn := sched.DownFnPeriods(6)
	res := balancer.RunWithFailures(m, traffic, balancer.MinTrafficPolicy{},
		balancer.DefaultConfig(),
		func(p int, bs cluster.StorageNodeID) bool { return downFn(p, int(bs)) },
		balancer.FailoverGreedy, rand.New(rand.NewSource(1)))
	for _, mig := range res.Migrations {
		got.Migrations = append(got.Migrations, fmt.Sprintf(
			"p%d seg%d %d->%d failover=%v", mig.Period, mig.Seg, mig.From, mig.To, mig.Failover))
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(&got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden scenario fixture updated: %s", goldenPath())
		return
	}
	blob, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update to create): %v", err)
	}
	var want scenarioGolden
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("golden fixture corrupt: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos scenario drifted from the golden fixture.\n got: %+v\nwant: %+v\n(after an intentional change: go test ./internal/chaos -run TestGoldenChaosScenario -update)", got, want)
	}
}

// TestChaosWorkerCountInvariance: the same (seed, plan) must produce a
// byte-identical dataset and identical fault accounting at 1 and 4 workers.
func TestChaosWorkerCountInvariance(t *testing.T) {
	f := scenarioFleet(t)
	plan := disruptivePlan()
	fp1, st1 := runScenario(t, f, plan, 1)
	fp4, st4 := runScenario(t, f, plan, 4)
	if fp1 != fp4 {
		t.Fatalf("dataset fingerprint differs across worker counts: %s vs %s", fp1[:12], fp4[:12])
	}
	if st1 != st4 {
		t.Fatalf("fault accounting differs across worker counts: %+v vs %+v", st1, st4)
	}
}

// TestNeutralPlanReproducesFaultFreeFingerprint is the acceptance property:
// a fully recovered, penalty-free, storm-free schedule leaves the dataset
// fingerprint bit-identical to a fault-free run at the same seed.
func TestNeutralPlanReproducesFaultFreeFingerprint(t *testing.T) {
	f := scenarioFleet(t)
	plan := neutralPlan()
	shape := chaos.Shape{
		BSs: len(f.Topology.StorageNodes), VDs: len(f.Topology.VDs), DurSec: 12,
	}
	sched := plan.Expand(scenarioSeed, shape)
	if !sched.DatasetNeutral() {
		t.Fatalf("plan expanded to a non-neutral schedule: %s", sched)
	}
	if len(sched.Crashes) == 0 {
		t.Fatal("neutral plan scheduled no crash windows; nothing is exercised")
	}

	chaosFP, st := runScenario(t, f, plan, 2)
	if st.FaultedIOs == 0 {
		t.Fatal("no IO ever hit a crashed BS; the neutrality claim is vacuous")
	}
	baseline, err := ebs.New(f).Run(context.Background(), scenarioOpts(2))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	baselineFP := invariant.Fingerprint(baseline)
	if chaosFP != baselineFP {
		t.Fatalf("neutral schedule perturbed the dataset: %s != %s", chaosFP[:12], baselineFP[:12])
	}
	var rep invariant.Report
	invariant.CheckChaosNeutrality(&rep, sched, chaosFP, baselineFP)
	if err := rep.Err(); err != nil {
		t.Fatalf("CheckChaosNeutrality: %v", err)
	}
}
