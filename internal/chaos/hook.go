package chaos

import (
	"sync/atomic"

	"ebslab/internal/netblock"
)

// NewFaultHook builds a netblock.FaultHook from the plan's Net rates. The
// n-th hook invocation draws from a splitmix64 stream over (seed, n), so a
// single-threaded exchange sequence replays the same faults for the same
// seed; under concurrent clients the per-request assignment of draws
// follows arrival order, but the fault *mix* still tracks the configured
// rates. A nil hook is returned when every rate is zero.
func (p *Plan) NewFaultHook(runSeed int64) netblock.FaultHook {
	if p.Net.Total() <= 0 {
		return nil
	}
	seed := p.Seed
	if seed == 0 {
		seed = runSeed
	}
	base := uint64(subSeed(seed, tagNet, 0))
	delayUS := p.Net.DelayUS
	if delayUS <= 0 {
		delayUS = 1000
	}
	n := p.Net
	var calls atomic.Uint64
	return func(*netblock.Request) netblock.FaultDecision {
		u := uniform(base, calls.Add(1))
		switch {
		case u < n.ResetRate:
			return netblock.FaultDecision{Fault: netblock.FaultReset}
		case u < n.ResetRate+n.DropRate:
			return netblock.FaultDecision{Fault: netblock.FaultDrop}
		case u < n.ResetRate+n.DropRate+n.DelayRate:
			return netblock.FaultDecision{DelayUS: delayUS}
		case u < n.ResetRate+n.DropRate+n.DelayRate+n.TruncateRate:
			return netblock.FaultDecision{Fault: netblock.FaultTruncate}
		case u < n.ResetRate+n.DropRate+n.DelayRate+n.TruncateRate+n.GarbageRate:
			return netblock.FaultDecision{Fault: netblock.FaultGarbage}
		case u < n.Total():
			return netblock.FaultDecision{Fault: netblock.FaultError}
		}
		return netblock.FaultDecision{}
	}
}

// uniform maps (base, i) to [0, 1).
func uniform(base, i uint64) float64 {
	return float64(splitmix64(base^i*0x9e3779b97f4a7c15)>>11) / (1 << 53)
}
