package chaos

import (
	"strings"
	"testing"

	"ebslab/internal/netblock"
)

func testShape() Shape { return Shape{BSs: 8, VDs: 24, DurSec: 60} }

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		frag string // expected error substring; "" means valid
	}{
		{"zero plan", Plan{}, ""},
		{"full plan", Plan{BSCrashes: 3, MeanDownSec: 4, FailoverPenaltyUS: 500,
			Storms: 2, StormFactor: 8, MeanStormSec: 6, Recoverable: true,
			Net: NetFaults{ResetRate: 0.1, DropRate: 0.1, DelayUS: 50}}, ""},
		{"negative crashes", Plan{BSCrashes: -1}, "BSCrashes"},
		{"negative storm mean", Plan{MeanStormSec: -2}, "MeanStormSec"},
		{"negative penalty", Plan{FailoverPenaltyUS: -1}, "FailoverPenaltyUS"},
		{"negative storm factor", Plan{StormFactor: -3}, "StormFactor"},
		{"rate above one", Plan{Net: NetFaults{DropRate: 1.5}}, "DropRate"},
		{"negative rate", Plan{Net: NetFaults{ResetRate: -0.1}}, "ResetRate"},
		{"rates sum past one", Plan{Net: NetFaults{ResetRate: 0.6, ErrorRate: 0.6}}, "sum"},
		{"negative delay", Plan{Net: NetFaults{DelayUS: -5}}, "DelayUS"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.frag == "" {
				if err != nil {
					t.Fatalf("valid plan rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error = %v, want mention of %q", err, tc.frag)
			}
		})
	}
}

func TestExpandIsPureFunctionOfInputs(t *testing.T) {
	p := &Plan{BSCrashes: 5, Storms: 3, FailoverPenaltyUS: 100}
	a := p.Expand(7, testShape())
	b := p.Expand(7, testShape())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same (plan, seed, shape) expanded to different schedules")
	}
	if c := p.Expand(8, testShape()); c.Fingerprint() == a.Fingerprint() {
		t.Fatal("run seed does not reach the fault streams")
	}
	// A plan with its own seed ignores the run seed.
	pinned := &Plan{Seed: 11, BSCrashes: 5, Storms: 3}
	if pinned.Expand(1, testShape()).Fingerprint() != pinned.Expand(2, testShape()).Fingerprint() {
		t.Fatal("plan seed did not pin the schedule across run seeds")
	}
}

func TestExpandWindowsWellFormed(t *testing.T) {
	p := &Plan{BSCrashes: 16, Storms: 16, MeanDownSec: 10, MeanStormSec: 10}
	s := p.Expand(3, testShape())
	if len(s.Crashes) != 16 || len(s.Storms) != 16 {
		t.Fatalf("expanded %d crashes, %d storms", len(s.Crashes), len(s.Storms))
	}
	for i, c := range s.Crashes {
		if c.BS < 0 || c.BS >= s.Shape.BSs {
			t.Fatalf("crash %d: BS %d out of range", i, c.BS)
		}
		if c.Start < 0 || c.Start >= s.Shape.DurSec || c.End <= c.Start {
			t.Fatalf("crash %d: window [%d, %d) malformed", i, c.Start, c.End)
		}
		if i > 0 && s.Crashes[i-1].Start > c.Start {
			t.Fatalf("crash %d out of Start order", i)
		}
	}
	for i, st := range s.Storms {
		if st.VD < 0 || st.VD >= s.Shape.VDs {
			t.Fatalf("storm %d: VD %d out of range", i, st.VD)
		}
		if st.Factor != 8 {
			t.Fatalf("storm %d: default factor = %v", i, st.Factor)
		}
		if st.Start < 0 || st.Start >= s.Shape.DurSec || st.End <= st.Start {
			t.Fatalf("storm %d: window [%d, %d) malformed", i, st.Start, st.End)
		}
	}
}

// TestCrashStreamIndependentOfStorms pins the per-window derived-RNG
// discipline: adding storms to a plan must not move its crashes.
func TestCrashStreamIndependentOfStorms(t *testing.T) {
	base := &Plan{BSCrashes: 6}
	noisy := &Plan{BSCrashes: 6, Storms: 9}
	a := base.Expand(5, testShape()).Crashes
	b := noisy.Expand(5, testShape()).Crashes
	if len(a) != len(b) {
		t.Fatalf("crash counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crash %d moved when storms were added: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRecoverableClampsEveryWindow(t *testing.T) {
	p := &Plan{BSCrashes: 32, Storms: 32, MeanDownSec: 40, MeanStormSec: 40, Recoverable: true}
	s := p.Expand(9, Shape{BSs: 4, VDs: 8, DurSec: 20})
	if !s.Recovered() {
		t.Fatal("recoverable plan expanded to an unrecovered schedule")
	}
	// Without the clamp, means of 40s against a 20s window must leak.
	loose := &Plan{BSCrashes: 32, MeanDownSec: 40}
	if loose.Expand(9, Shape{BSs: 4, VDs: 8, DurSec: 20}).Recovered() {
		t.Fatal("unclamped long windows all recovered; the clamp test is vacuous")
	}
}

func TestScheduleQueries(t *testing.T) {
	s := &Schedule{
		Shape: Shape{BSs: 4, VDs: 4, DurSec: 30},
		Crashes: []Crash{
			{BS: 1, Window: Window{Start: 5, End: 10}},
			{BS: 2, Window: Window{Start: 8, End: 12}},
		},
		Storms: []Storm{
			{VD: 0, Factor: 4, Window: Window{Start: 2, End: 6}},
			{VD: 0, Factor: 2, Window: Window{Start: 4, End: 8}},
		},
	}
	if s.BSDownAt(1, 4) || !s.BSDownAt(1, 5) || !s.BSDownAt(1, 9) || s.BSDownAt(1, 10) {
		t.Fatal("BSDownAt disagrees with the half-open window")
	}
	if s.BSDownAt(0, 6) {
		t.Fatal("healthy BS reported down")
	}
	if got := s.StormBoost(0, 3); got != 4 {
		t.Fatalf("boost at 3 = %v, want 4", got)
	}
	if got := s.StormBoost(0, 5); got != 8 {
		t.Fatalf("overlapping storms compound: boost at 5 = %v, want 8", got)
	}
	if got := s.StormBoost(0, 20); got != 1 {
		t.Fatalf("boost outside windows = %v, want 1", got)
	}
	if s.VDStormFn(1) != nil {
		t.Fatal("VD without storms got a boost function")
	}
	if fn := s.VDStormFn(0); fn == nil || fn(3) != 4 {
		t.Fatal("storming VD's boost function wrong")
	}
	down := s.DownFnPeriods(6) // 5s per period
	if !down(1, 1) { // seconds [5,10): crash of BS 1
		t.Fatal("period 1 should see BS 1 down")
	}
	if down(0, 1) || down(3, 1) {
		t.Fatal("BS 1 down outside its window's periods")
	}
	if !s.Recovered() {
		t.Fatal("all windows close in-run")
	}
	if s.DatasetNeutral() {
		t.Fatal("a schedule with storms can never be dataset neutral")
	}
	neutral := &Schedule{Shape: s.Shape, Crashes: s.Crashes}
	if !neutral.DatasetNeutral() {
		t.Fatal("recovered crash-only schedule with no penalty is neutral")
	}
	neutral.PenaltyUS = 100
	if neutral.DatasetNeutral() {
		t.Fatal("a latency penalty is dataset-visible")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	p := &Plan{BSCrashes: 4, Storms: 2}
	a := p.Expand(1, testShape())
	b := p.Expand(1, testShape())
	b.Crashes[0].End++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint blind to a window edge")
	}
	c := p.Expand(1, testShape())
	c.PenaltyUS = 1
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint blind to the penalty")
	}
}

func TestStatsMergeAndString(t *testing.T) {
	a := Stats{CrashWindows: 2, StormWindows: 1, FaultedIOs: 10, StormIOs: 3}
	a.Merge(Stats{FaultedIOs: 5, StormIOs: 4})
	if a.FaultedIOs != 15 || a.StormIOs != 7 || a.CrashWindows != 2 {
		t.Fatalf("merge = %+v", a)
	}
	if !strings.Contains(a.String(), "15 faulted IOs") {
		t.Fatalf("stats string = %q", a.String())
	}
	s := (&Plan{BSCrashes: 1, Storms: 1, FailoverPenaltyUS: 5}).Expand(1, testShape())
	str := s.String()
	if !strings.Contains(str, "crash") || !strings.Contains(str, "storm") || !strings.Contains(str, "penalty") {
		t.Fatalf("schedule string = %q", str)
	}
}

func TestFaultHookDeterministicSequence(t *testing.T) {
	p := &Plan{Net: NetFaults{
		ResetRate: 0.1, DropRate: 0.1, DelayRate: 0.1,
		TruncateRate: 0.1, GarbageRate: 0.1, ErrorRate: 0.1,
	}}
	h1 := p.NewFaultHook(7)
	h2 := p.NewFaultHook(7)
	req := &netblock.Request{Op: netblock.OpRead}
	seen := map[netblock.Fault]int{}
	delays := 0
	const draws = 4000
	for i := 0; i < draws; i++ {
		d1, d2 := h1(req), h2(req)
		if d1 != d2 {
			t.Fatalf("draw %d: hooks from the same plan diverge: %+v vs %+v", i, d1, d2)
		}
		seen[d1.Fault]++
		if d1.DelayUS > 0 {
			delays++
		}
	}
	for _, f := range []netblock.Fault{
		netblock.FaultNone, netblock.FaultReset, netblock.FaultDrop,
		netblock.FaultTruncate, netblock.FaultGarbage, netblock.FaultError,
	} {
		if seen[f] == 0 {
			t.Fatalf("fault %v never drawn in %d draws at 10%% rate", f, draws)
		}
	}
	if delays == 0 {
		t.Fatal("delay fault never drawn")
	}
	// The clean share should be near the configured 40%.
	clean := seen[netblock.FaultNone] - delays
	if frac := float64(clean) / draws; frac < 0.3 || frac > 0.5 {
		t.Fatalf("clean exchange fraction %.3f far from configured 0.4", frac)
	}
	if (&Plan{}).NewFaultHook(7) != nil {
		t.Fatal("zero rates must compile to no hook at all")
	}
}

// TestLeaderKillExpansion pins the control-plane fault windows: seeded
// determinism, the mid-run trigger range, dedup of equal draws, expansion
// independent of DurSec (the trigger is logical, not temporal), and the
// append-only fingerprint rule that keeps kill-free schedules compatible
// with fingerprints minted before leader kills existed.
func TestLeaderKillExpansion(t *testing.T) {
	p := &Plan{LeaderKills: 4}
	shape := Shape{BSs: 3, VDs: 8, DurSec: 10, Shards: 5}

	s1 := p.Expand(7, shape)
	s2 := p.Expand(7, shape)
	if len(s1.LeaderKills) == 0 {
		t.Fatal("no leader kills expanded")
	}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatal("same (plan, seed, shape) expanded to different schedules")
	}
	seen := map[int]bool{}
	last := 0
	for _, k := range s1.LeaderKills {
		if k.AfterResults < 1 || k.AfterResults > shape.Shards-1 {
			t.Fatalf("trigger %d outside mid-run range [1, %d]", k.AfterResults, shape.Shards-1)
		}
		if k.AfterResults < last {
			t.Fatalf("kills not sorted: %v", s1.LeaderKills)
		}
		if seen[k.AfterResults] {
			t.Fatalf("duplicate trigger %d survived dedup: %v", k.AfterResults, s1.LeaderKills)
		}
		seen[k.AfterResults] = true
		last = k.AfterResults
	}

	// Logical windows expand even when the temporal shape is empty.
	s3 := p.Expand(7, Shape{Shards: 5})
	if len(s3.LeaderKills) != len(s1.LeaderKills) {
		t.Fatalf("zero-duration shape expanded %d kills, want %d", len(s3.LeaderKills), len(s1.LeaderKills))
	}
	// ... but not without a shard plan to be mid-run of.
	if got := p.Expand(7, Shape{BSs: 3, VDs: 8, DurSec: 10}); len(got.LeaderKills) != 0 {
		t.Fatalf("shardless shape expanded %d kills, want 0", len(got.LeaderKills))
	}

	// A kill-free schedule must fingerprint identically whether or not the
	// shape carries a shard count: the leader-kill section is append-only.
	base := (&Plan{BSCrashes: 2, Recoverable: true}).Expand(7, Shape{BSs: 3, VDs: 8, DurSec: 10})
	withShards := (&Plan{BSCrashes: 2, Recoverable: true}).Expand(7, Shape{BSs: 3, VDs: 8, DurSec: 10, Shards: 5})
	if base.Fingerprint() != withShards.Fingerprint() {
		t.Fatal("kill-free fingerprint depends on Shape.Shards; committed fixtures would break")
	}

	// Kills must not affect where crashes/storms land (independent streams).
	noKills := (&Plan{BSCrashes: 2, Storms: 2}).Expand(7, shape)
	withKills := (&Plan{BSCrashes: 2, Storms: 2, LeaderKills: 3}).Expand(7, shape)
	if len(noKills.Crashes) != len(withKills.Crashes) || len(noKills.Storms) != len(withKills.Storms) {
		t.Fatal("adding leader kills changed crash/storm counts")
	}
	for i := range noKills.Crashes {
		if noKills.Crashes[i] != withKills.Crashes[i] {
			t.Fatal("adding leader kills moved a crash window")
		}
	}

	if err := (&Plan{LeaderKills: -1}).Validate(); err == nil {
		t.Fatal("negative LeaderKills validated")
	}
}
