// Package chaos is the deterministic fault-injection layer of the
// simulator: a Plan describes *how much* trouble a run should see
// (BlockServer crash-and-recover windows, hot-tenant traffic storms, and
// netblock wire faults), and Expand turns the plan into a concrete
// Schedule — the exact windows, derived from (seed, plan, fleet shape) with
// the same per-entity derived-RNG discipline as internal/workload and
// internal/par, so the schedule is byte-identical across runs, worker
// counts, and expansion order.
//
// The engine consumes the schedule in three ways, all deterministic:
//
//   - IOs that target a BlockServer inside a crash window are counted
//     (Stats.FaultedIOs) and, when FailoverPenaltyUS is set, pay a fixed
//     frontend-network latency penalty — the detour to the failover
//     replica.
//   - VDs inside a storm window offer StormFactor times their calibrated
//     demand, which drives the throttle into the §5 symptoms.
//   - The Net rates feed a netblock.FaultHook (see NewFaultHook) so the
//     same plan shakes the RPC substrate in-process or over TCP.
//
// A schedule whose every window closes before the run ends and whose
// dataset-visible knobs are zero (no penalty, no storms) is *dataset
// neutral*: the run must reproduce the fault-free dataset fingerprint
// bit-exactly. That property is what keeps the chaos machinery honest — it
// is pinned by invariant.CheckChaosNeutrality and the golden scenario test.
package chaos

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// splitmix64 mixes a 64-bit state; the same finalizer internal/workload
// uses to derive independent per-entity seeds from a master seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// subSeed derives a deterministic seed for a named stream; tag values must
// be distinct per stream family.
func subSeed(master int64, tag, entity uint64) int64 {
	h := splitmix64(uint64(master) ^ splitmix64(tag))
	h = splitmix64(h ^ splitmix64(entity))
	return int64(h)
}

// Stream tags. Each fault family draws from its own derived stream, so
// adding storms to a plan never perturbs where its crashes land.
const (
	tagCrash uint64 = 0xC4A54
	tagStorm uint64 = 0x570F4
	tagNet   uint64 = 0x4E7F0
	tagLead  uint64 = 0x1EAD0
)

func newRand(master int64, tag, entity uint64) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(master, tag, entity)))
}

// NetFaults sets per-request probabilities for the netblock wire faults.
// The rates must each lie in [0,1] and sum to at most 1; the remainder is
// the probability of a clean exchange.
type NetFaults struct {
	// ResetRate drops the connection before the request executes.
	ResetRate float64
	// DropRate swallows the request silently: it executes but no response
	// is ever written (the client's deadline is what saves it).
	DropRate float64
	// DelayRate stalls the response by DelayUS before writing it.
	DelayRate float64
	// TruncateRate writes only part of the response frame, then resets.
	TruncateRate float64
	// GarbageRate replaces the response frame with garbage bytes, then
	// resets.
	GarbageRate float64
	// ErrorRate answers with a StatusError instead of executing.
	ErrorRate float64
	// DelayUS is the injected stall for delayed responses (default 1000).
	DelayUS int64
}

// Total returns the summed fault probability.
func (n NetFaults) Total() float64 {
	return n.ResetRate + n.DropRate + n.DelayRate + n.TruncateRate + n.GarbageRate + n.ErrorRate
}

// Validate rejects rates outside [0,1] or summing past 1.
func (n NetFaults) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ResetRate", n.ResetRate}, {"DropRate", n.DropRate},
		{"DelayRate", n.DelayRate}, {"TruncateRate", n.TruncateRate},
		{"GarbageRate", n.GarbageRate}, {"ErrorRate", n.ErrorRate},
	} {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("chaos: NetFaults.%s is %v, want [0,1]", f.name, f.v)
		}
	}
	if t := n.Total(); t > 1 {
		return fmt.Errorf("chaos: NetFaults rates sum to %v, want <= 1", t)
	}
	if n.DelayUS < 0 {
		return fmt.Errorf("chaos: NetFaults.DelayUS is %d, want >= 0", n.DelayUS)
	}
	return nil
}

// Plan describes a fault campaign in fleet-independent terms. The zero
// value is a no-op plan. Plans are pure configuration: expanding one never
// mutates it, and the same (plan, seed, shape) always yields the same
// Schedule.
type Plan struct {
	// Seed drives the fault streams (0 = derive from the run seed, so the
	// default plan follows the simulation seed around).
	Seed int64
	// BSCrashes is how many BlockServer crash-and-recover windows to
	// schedule.
	BSCrashes int
	// MeanDownSec is the mean crash window length (default 5).
	MeanDownSec int
	// FailoverPenaltyUS is added to the frontend-network latency of every
	// IO that targets a crashed BlockServer — the failover detour. Zero
	// observes crash windows without touching the dataset.
	FailoverPenaltyUS float64
	// Storms is how many hot-tenant traffic storms to schedule.
	Storms int
	// StormFactor multiplies a storming VD's offered demand (default 8).
	StormFactor float64
	// MeanStormSec is the mean storm length (default 5).
	MeanStormSec int
	// LeaderKills is how many coordinator leader-kill faults to schedule.
	// Each one kills whichever coordinator replica currently leads the
	// fabric's replicated control plane once the shard ledger has accepted
	// its trigger count of results (the trigger is logical — a result
	// count — not a wall-clock second, so the fault lands at the same
	// control-plane point on every run). Consumed by fabric.ReplicaSet;
	// single-replica runs and the in-engine fault machinery ignore it.
	// Leader kills never touch the dataset: the surviving replicas resume
	// from the replicated ledger and the merged dataset fingerprint stays
	// byte-identical to the fault-free run.
	LeaderKills int
	// Recoverable clamps every window to close before the run ends, making
	// the schedule fully recovered by construction.
	Recoverable bool
	// Net sets the netblock wire-fault rates consumed by NewFaultHook; the
	// simulation engine does not read them.
	Net NetFaults
}

// Validate rejects plan values that have no meaning.
func (p *Plan) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"BSCrashes", p.BSCrashes},
		{"MeanDownSec", p.MeanDownSec},
		{"Storms", p.Storms},
		{"MeanStormSec", p.MeanStormSec},
		{"LeaderKills", p.LeaderKills},
	} {
		if f.v < 0 {
			return fmt.Errorf("chaos: Plan.%s is %d, want >= 0", f.name, f.v)
		}
	}
	if math.IsNaN(p.FailoverPenaltyUS) || math.IsInf(p.FailoverPenaltyUS, 0) || p.FailoverPenaltyUS < 0 {
		return fmt.Errorf("chaos: Plan.FailoverPenaltyUS is %v, want a finite value >= 0", p.FailoverPenaltyUS)
	}
	if math.IsNaN(p.StormFactor) || math.IsInf(p.StormFactor, 0) || p.StormFactor < 0 {
		return fmt.Errorf("chaos: Plan.StormFactor is %v, want a finite value >= 0", p.StormFactor)
	}
	return p.Net.Validate()
}

// Shape is the fleet geometry a plan is expanded against.
type Shape struct {
	BSs    int // storage nodes
	VDs    int // virtual disks
	DurSec int // observation window
	// Shards is the fabric shard-plan size (0 outside distributed runs).
	// Leader-kill triggers are drawn from [1, Shards-1] so the kill always
	// lands strictly mid-run: after some results are in, before the last.
	Shards int
}

// Window is a half-open interval of whole seconds, [Start, End).
type Window struct {
	Start int
	End   int
}

// Contains reports whether sec lies inside the window.
func (w Window) Contains(sec int) bool { return sec >= w.Start && sec < w.End }

// Crash is one BlockServer outage window.
type Crash struct {
	BS int
	Window
}

// Storm is one hot-tenant burst: the VD offers Factor times its calibrated
// demand for the window.
type Storm struct {
	VD     int
	Factor float64
	Window
}

// LeaderKill is one control-plane fault: kill whichever coordinator
// replica is leading once AfterResults shard results have been accepted
// into the replicated ledger. The window is logical rather than temporal —
// its position in the run is fixed by control-plane progress, which is
// what makes the fault schedule replayable regardless of worker speed.
type LeaderKill struct {
	AfterResults int
}

// Schedule is a fully expanded fault plan: concrete windows against a
// concrete fleet shape. It is immutable after Expand.
type Schedule struct {
	Shape       Shape
	PenaltyUS   float64      // frontend-net penalty for IOs targeting a down BS
	Crashes     []Crash      // sorted by (Start, BS)
	Storms      []Storm      // sorted by (Start, VD)
	LeaderKills []LeaderKill // sorted by AfterResults, deduplicated
}

// Expand derives the concrete schedule of p against shape. The plan seed
// (or runSeed when the plan seed is zero) feeds one derived stream per
// window, so the i-th crash is the same crash no matter how many storms the
// plan also carries.
func (p *Plan) Expand(runSeed int64, shape Shape) *Schedule {
	seed := p.Seed
	if seed == 0 {
		seed = runSeed
	}
	s := &Schedule{Shape: shape, PenaltyUS: p.FailoverPenaltyUS}
	// Leader kills are logical windows keyed on control-plane progress,
	// not seconds, so they expand even for a zero-duration shape. Each
	// trigger draws from its own derived stream; equal draws collapse to
	// one kill (two kills at the same ledger count would race the same
	// leader).
	if p.LeaderKills > 0 && shape.Shards > 1 {
		seen := make(map[int]bool)
		for i := 0; i < p.LeaderKills; i++ {
			rng := newRand(seed, tagLead, uint64(i))
			after := 1 + rng.Intn(shape.Shards-1)
			if !seen[after] {
				seen[after] = true
				s.LeaderKills = append(s.LeaderKills, LeaderKill{AfterResults: after})
			}
		}
		sort.Slice(s.LeaderKills, func(i, j int) bool {
			return s.LeaderKills[i].AfterResults < s.LeaderKills[j].AfterResults
		})
	}
	if shape.DurSec <= 0 {
		return s
	}
	meanDown := p.MeanDownSec
	if meanDown <= 0 {
		meanDown = 5
	}
	if shape.BSs > 0 {
		for i := 0; i < p.BSCrashes; i++ {
			rng := newRand(seed, tagCrash, uint64(i))
			c := Crash{BS: rng.Intn(shape.BSs)}
			c.Start = rng.Intn(shape.DurSec)
			c.End = c.Start + geometricAtLeast1(rng, float64(meanDown))
			if p.Recoverable {
				clampRecoverable(&c.Window, shape.DurSec)
			}
			s.Crashes = append(s.Crashes, c)
		}
	}
	factor := p.StormFactor
	if factor == 0 {
		factor = 8
	}
	meanStorm := p.MeanStormSec
	if meanStorm <= 0 {
		meanStorm = 5
	}
	if shape.VDs > 0 && factor != 1 {
		for i := 0; i < p.Storms; i++ {
			rng := newRand(seed, tagStorm, uint64(i))
			st := Storm{VD: rng.Intn(shape.VDs), Factor: factor}
			st.Start = rng.Intn(shape.DurSec)
			st.End = st.Start + geometricAtLeast1(rng, float64(meanStorm))
			if p.Recoverable {
				clampRecoverable(&st.Window, shape.DurSec)
			}
			s.Storms = append(s.Storms, st)
		}
	}
	sort.Slice(s.Crashes, func(i, j int) bool {
		a, b := s.Crashes[i], s.Crashes[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.BS != b.BS {
			return a.BS < b.BS
		}
		return a.End < b.End
	})
	sort.Slice(s.Storms, func(i, j int) bool {
		a, b := s.Storms[i], s.Storms[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.VD != b.VD {
			return a.VD < b.VD
		}
		return a.End < b.End
	})
	return s
}

// clampRecoverable shifts a window back so it closes within the run.
func clampRecoverable(w *Window, durSec int) {
	if w.End <= durSec {
		return
	}
	over := w.End - durSec
	w.Start -= over
	w.End -= over
	if w.Start < 0 {
		w.Start = 0
	}
}

// geometricAtLeast1 draws a geometric count >= 1 with the given mean.
func geometricAtLeast1(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for rng.Float64() > p {
		n++
		if n >= 64 {
			break
		}
	}
	return n
}

// BSDownAt reports whether BlockServer bs is inside a crash window at sec.
func (s *Schedule) BSDownAt(bs, sec int) bool {
	for _, c := range s.Crashes {
		if c.Start > sec {
			break // sorted by Start
		}
		if c.BS == bs && c.Contains(sec) {
			return true
		}
	}
	return false
}

// StormBoost returns the demand multiplier of vd at sec (1 outside storms;
// overlapping storms compound).
func (s *Schedule) StormBoost(vd, sec int) float64 {
	b := 1.0
	for _, st := range s.Storms {
		if st.Start > sec {
			break
		}
		if st.VD == vd && st.Contains(sec) {
			b *= st.Factor
		}
	}
	return b
}

// VDStormFn returns a per-second boost function for vd, or nil when the VD
// never storms — the engine's fast path.
func (s *Schedule) VDStormFn(vd int) func(sec int) float64 {
	has := false
	for _, st := range s.Storms {
		if st.VD == vd {
			has = true
			break
		}
	}
	if !has {
		return nil
	}
	return func(sec int) float64 { return s.StormBoost(vd, sec) }
}

// DownFnPeriods adapts the crash windows to balancer periods: the run's
// DurSec seconds are mapped evenly onto nPeriods, and a BS counts as down
// in a period iff any of the period's seconds fall in one of its crash
// windows.
func (s *Schedule) DownFnPeriods(nPeriods int) func(period, bs int) bool {
	if nPeriods <= 0 || s.Shape.DurSec <= 0 || len(s.Crashes) == 0 {
		return func(int, int) bool { return false }
	}
	secsPer := float64(s.Shape.DurSec) / float64(nPeriods)
	return func(period, bs int) bool {
		lo := int(float64(period) * secsPer)
		hi := int(float64(period+1) * secsPer)
		if hi <= lo {
			hi = lo + 1
		}
		for sec := lo; sec < hi; sec++ {
			if s.BSDownAt(bs, sec) {
				return true
			}
		}
		return false
	}
}

// Recovered reports whether every window closes before the run ends.
func (s *Schedule) Recovered() bool {
	for _, c := range s.Crashes {
		if c.End > s.Shape.DurSec {
			return false
		}
	}
	for _, st := range s.Storms {
		if st.End > s.Shape.DurSec {
			return false
		}
	}
	return true
}

// DatasetNeutral reports whether the schedule can leave no residue in the
// dataset: every window recovers in-run, no latency penalty, no storms.
// A neutral schedule's run must fingerprint identically to the fault-free
// run (invariant.CheckChaosNeutrality enforces this).
func (s *Schedule) DatasetNeutral() bool {
	return s.Recovered() && s.PenaltyUS == 0 && len(s.Storms) == 0
}

// Fingerprint returns a collision-resistant digest of the full schedule:
// shape, penalty, and every window field in order. Two expansions replay
// identically iff their fingerprints match.
func (s *Schedule) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wI64 := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wF64 := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	wI64(int64(s.Shape.BSs))
	wI64(int64(s.Shape.VDs))
	wI64(int64(s.Shape.DurSec))
	wF64(s.PenaltyUS)
	wI64(int64(len(s.Crashes)))
	for _, c := range s.Crashes {
		wI64(int64(c.BS))
		wI64(int64(c.Start))
		wI64(int64(c.End))
	}
	wI64(int64(len(s.Storms)))
	for _, st := range s.Storms {
		wI64(int64(st.VD))
		wI64(int64(st.Start))
		wI64(int64(st.End))
		wF64(st.Factor)
	}
	// The leader-kill section is appended only when present so that every
	// fingerprint minted before control-plane faults existed — including
	// the committed golden fixtures — stays valid for kill-free schedules.
	if len(s.LeaderKills) > 0 {
		wI64(int64(s.Shape.Shards))
		wI64(int64(len(s.LeaderKills)))
		for _, k := range s.LeaderKills {
			wI64(int64(k.AfterResults))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// String renders a human-readable schedule summary.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos schedule (%d BSs, %d VDs, %ds window)", s.Shape.BSs, s.Shape.VDs, s.Shape.DurSec)
	if s.PenaltyUS > 0 {
		fmt.Fprintf(&b, ", failover penalty %.0fus", s.PenaltyUS)
	}
	for _, c := range s.Crashes {
		fmt.Fprintf(&b, "\n  crash: BS %d down [%ds, %ds)", c.BS, c.Start, c.End)
	}
	for _, st := range s.Storms {
		fmt.Fprintf(&b, "\n  storm: VD %d x%.1f [%ds, %ds)", st.VD, st.Factor, st.Start, st.End)
	}
	for _, k := range s.LeaderKills {
		fmt.Fprintf(&b, "\n  leader-kill: after %d accepted results", k.AfterResults)
	}
	if len(s.Crashes)+len(s.Storms)+len(s.LeaderKills) == 0 {
		b.WriteString("\n  (no fault windows)")
	}
	return b.String()
}

// Stats is the fault accounting of one simulation run. Per-shard counters
// are summed during the merge, so totals are worker-count independent.
type Stats struct {
	// CrashWindows and StormWindows describe the expanded schedule.
	CrashWindows int
	StormWindows int
	// FaultedIOs counts IOs that targeted a BlockServer inside a crash
	// window (whether or not a latency penalty applied).
	FaultedIOs int64
	// StormIOs counts IOs emitted while their VD was inside a storm window.
	StormIOs int64
}

// Merge folds another shard's counters into s.
func (s *Stats) Merge(o Stats) {
	s.FaultedIOs += o.FaultedIOs
	s.StormIOs += o.StormIOs
}

// String renders the accounting for reports.
func (s Stats) String() string {
	return fmt.Sprintf("chaos stats: %d crash windows, %d storm windows, %d faulted IOs, %d storm IOs",
		s.CrashWindows, s.StormWindows, s.FaultedIOs, s.StormIOs)
}
