// Package consensus implements the replicated log behind the fabric's
// control plane: Raft-style leader election, log replication, and commit
// acknowledgement across a small set of coordinator replicas.
//
// The design follows the etcd/raft shape rather than the thread-per-role
// textbook shape: Node is a passive, single-threaded state machine whose
// only inputs are Step (a message arrived), Tick (one logical clock beat),
// and Propose (the local application wants an entry appended). Every input
// returns the messages the node now wants delivered; the node never blocks,
// sleeps, or touches a socket. That split is what makes the protocol
// testable — table tests drive elections message by message, and the seeded
// reorder/partition simulator in sim_test.go runs whole clusters through
// adversarial schedules deterministically. Runner (runner.go) owns the real
// ticker and transport.
package consensus

import (
	"math/rand"
)

// State is a node's role in the current term.
type State uint8

const (
	Follower State = iota
	Candidate
	Leader
)

func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return "invalid"
}

// Entry is one replicated log record. Index is 1-based; Cmd is opaque to
// this package (the fabric encodes ledger commands into it). A nil Cmd is a
// leadership no-op: every new leader appends one so entries inherited from
// prior terms can commit under the current-term counting rule.
type Entry struct {
	Term  uint64
	Index uint64
	Cmd   []byte
}

// None marks "no known leader" / "voted for nobody".
const None = -1

// Config sizes one consensus node. All tick counts are in units of the
// driver's tick interval; the node itself has no notion of wall time.
type Config struct {
	// ID is this replica's index in [0, Peers).
	ID int
	// Peers is the cluster size. IDs are dense: 0..Peers-1.
	Peers int
	// BootstrapLeader, when >= 0, names the replica every node agrees is
	// the leader of term 1 at construction, skipping the cold-start
	// election. The fabric always bootstraps replica 0 so a run can begin
	// dispatching immediately. Set to None for a cold start.
	BootstrapLeader int
	// ElectionTicks is the base follower timeout before campaigning.
	// The effective timeout is ElectionTicks + jitter + ID*StaggerTicks.
	// Default 20.
	ElectionTicks int
	// ElectionJitterTicks bounds the seeded random addition to the
	// election timeout (jitter is drawn uniformly from [0,
	// ElectionJitterTicks)). Default 10.
	ElectionJitterTicks int
	// StaggerTicks spreads replica timeouts by ID so that after a leader
	// dies, the lowest live ID reliably campaigns first and wins before
	// the next one times out. Keeping StaggerTicks > ElectionJitterTicks
	// makes the succession order deterministic, which the golden
	// leadership-transition fixtures rely on. Default 15.
	StaggerTicks int
	// HeartbeatTicks is the leader's append/heartbeat broadcast period.
	// Default 2.
	HeartbeatTicks int
	// Seed feeds the per-node jitter RNG; the same seed reproduces the
	// same election timing.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Peers <= 0 {
		c.Peers = 1
	}
	if c.ElectionTicks <= 0 {
		c.ElectionTicks = 20
	}
	if c.ElectionJitterTicks <= 0 {
		c.ElectionJitterTicks = 10
	}
	if c.StaggerTicks < 0 {
		c.StaggerTicks = 0
	} else if c.StaggerTicks == 0 {
		c.StaggerTicks = 15
	}
	if c.HeartbeatTicks <= 0 {
		c.HeartbeatTicks = 2
	}
	return c
}

// Node is one consensus participant. It is not safe for concurrent use;
// Runner serializes access.
type Node struct {
	cfg Config

	state    State
	term     uint64
	votedFor int
	leader   int

	// log[i] holds the entry with Index i+1. The log is never compacted:
	// a fabric run's control-plane traffic is bounded by its shard count,
	// and keeping the full log means a rejoining replica can always be
	// caught up from index 1.
	log     []Entry
	commit  uint64
	applied uint64

	votes map[int]bool
	// next[i]/match[i] are the leader's replication cursors per peer.
	next  []uint64
	match []uint64

	elapsed int // ticks since last heartbeat (follower) or last broadcast (leader)
	timeout int // current randomized election timeout, in ticks
	rng     *rand.Rand
}

// NewNode constructs a node. With BootstrapLeader >= 0 every replica starts
// in term 1 already agreeing on that leader (the bootstrap replica appends
// its no-op immediately); messages the bootstrap leader would send are
// deferred to its first heartbeat tick.
func NewNode(cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:      cfg,
		votedFor: None,
		leader:   None,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(cfg.ID+1)*0x9E3779B97F4A7C15))),
	}
	n.resetTimeout()
	if cfg.BootstrapLeader >= 0 && cfg.BootstrapLeader < cfg.Peers {
		n.term = 1
		if cfg.BootstrapLeader == cfg.ID {
			n.becomeLeader()
		} else {
			n.leader = cfg.BootstrapLeader
		}
	}
	return n
}

// Accessors for the driver and tests.

func (n *Node) ID() int           { return n.cfg.ID }
func (n *Node) State() State      { return n.state }
func (n *Node) Term() uint64      { return n.term }
func (n *Node) Leader() int       { return n.leader }
func (n *Node) Commit() uint64    { return n.commit }
func (n *Node) LastIndex() uint64 { return uint64(len(n.log)) }
func (n *Node) lastTerm() uint64  { return n.termAt(n.LastIndex()) }
func (n *Node) quorum(c int) bool { return c >= n.cfg.Peers/2+1 }

// termAt returns the term of the entry at a 1-based index; index 0 (the
// empty-log sentinel) has term 0.
func (n *Node) termAt(index uint64) uint64 {
	if index == 0 || index > uint64(len(n.log)) {
		return 0
	}
	return n.log[index-1].Term
}

func (n *Node) resetTimeout() {
	n.timeout = n.cfg.ElectionTicks + n.rng.Intn(n.cfg.ElectionJitterTicks) + n.cfg.ID*n.cfg.StaggerTicks
}

// Tick advances the node's logical clock by one beat and returns any
// messages to send: heartbeats from a leader, or a fresh campaign from a
// follower/candidate whose election timer fired.
func (n *Node) Tick() []Message {
	n.elapsed++
	if n.state == Leader {
		if n.elapsed >= n.cfg.HeartbeatTicks {
			n.elapsed = 0
			return n.broadcastAppend()
		}
		return nil
	}
	if n.elapsed >= n.timeout {
		return n.campaign()
	}
	return nil
}

// Propose appends cmd to the log if this node is the leader. It returns the
// entry's (index, term) — the waiter key for commit acknowledgement — plus
// the replication messages to send. ok is false on a non-leader.
func (n *Node) Propose(cmd []byte) (index, term uint64, msgs []Message, ok bool) {
	if n.state != Leader {
		return 0, 0, nil, false
	}
	n.appendEntry(cmd)
	index = n.LastIndex()
	n.match[n.cfg.ID] = index
	n.maybeCommit()
	return index, n.term, n.broadcastAppend(), true
}

// TakeCommitted returns the entries committed since the last call, in log
// order, advancing the applied cursor. The driver applies them to its FSM.
func (n *Node) TakeCommitted() []Entry {
	if n.applied >= n.commit {
		return nil
	}
	ents := make([]Entry, n.commit-n.applied)
	copy(ents, n.log[n.applied:n.commit])
	n.applied = n.commit
	return ents
}

// Step processes one incoming message and returns the responses/messages to
// send.
func (n *Node) Step(m Message) []Message {
	if m.Term > n.term {
		// Any newer-term message forces us to that term as a follower;
		// the leader (if the message reveals one) is learned below.
		n.becomeFollower(m.Term, None)
	}
	switch m.Type {
	case MsgVote:
		return n.onVote(m)
	case MsgVoteResp:
		n.onVoteResp(m)
		if n.state == Leader && n.term == m.Term {
			// Just won: announce immediately rather than waiting a beat.
			return n.broadcastAppend()
		}
		return nil
	case MsgApp:
		return n.onApp(m)
	case MsgAppResp:
		return n.onAppResp(m)
	}
	return nil
}

func (n *Node) campaign() []Message {
	n.state = Candidate
	n.term++
	n.votedFor = n.cfg.ID
	n.leader = None
	n.votes = map[int]bool{n.cfg.ID: true}
	n.elapsed = 0
	n.resetTimeout()
	if n.quorum(1) {
		// Single-node cluster: win instantly.
		n.becomeLeader()
		return nil
	}
	msgs := make([]Message, 0, n.cfg.Peers-1)
	for id := 0; id < n.cfg.Peers; id++ {
		if id == n.cfg.ID {
			continue
		}
		msgs = append(msgs, Message{
			Type:         MsgVote,
			From:         n.cfg.ID,
			To:           id,
			Term:         n.term,
			LastLogIndex: n.LastIndex(),
			LastLogTerm:  n.lastTerm(),
		})
	}
	return msgs
}

func (n *Node) becomeFollower(term uint64, leader int) {
	n.state = Follower
	n.term = term
	n.votedFor = None
	n.leader = leader
	n.votes = nil
	n.elapsed = 0
	n.resetTimeout()
}

func (n *Node) becomeLeader() {
	n.state = Leader
	n.leader = n.cfg.ID
	n.elapsed = 0
	last := n.LastIndex()
	n.next = make([]uint64, n.cfg.Peers)
	n.match = make([]uint64, n.cfg.Peers)
	for id := range n.next {
		n.next[id] = last + 1
	}
	// The no-op carries the new term into the log so earlier-term entries
	// can commit under the current-term counting rule (Raft §5.4.2).
	n.appendEntry(nil)
	n.match[n.cfg.ID] = n.LastIndex()
	n.maybeCommit()
}

func (n *Node) appendEntry(cmd []byte) {
	n.log = append(n.log, Entry{Term: n.term, Index: n.LastIndex() + 1, Cmd: cmd})
}

func (n *Node) onVote(m Message) []Message {
	resp := Message{Type: MsgVoteResp, From: n.cfg.ID, To: m.From, Term: n.term}
	if m.Term < n.term {
		return []Message{resp}
	}
	// m.Term == n.term here (a greater term already reset us in Step).
	upToDate := m.LastLogTerm > n.lastTerm() ||
		(m.LastLogTerm == n.lastTerm() && m.LastLogIndex >= n.LastIndex())
	if upToDate && (n.votedFor == None || n.votedFor == m.From) {
		n.votedFor = m.From
		n.elapsed = 0
		resp.Granted = true
	}
	return []Message{resp}
}

func (n *Node) onVoteResp(m Message) {
	if n.state != Candidate || m.Term != n.term || !m.Granted {
		return
	}
	n.votes[m.From] = true
	if n.quorum(len(n.votes)) {
		n.becomeLeader()
	}
}

func (n *Node) onApp(m Message) []Message {
	resp := Message{Type: MsgAppResp, From: n.cfg.ID, To: m.From, Term: n.term}
	if m.Term < n.term {
		return []Message{resp}
	}
	// Valid append from the current term's leader: adopt it and reset the
	// election timer. (A candidate seeing a same-term leader steps down.)
	if n.state != Follower {
		n.state = Follower
		n.votes = nil
	}
	n.leader = m.From
	n.elapsed = 0

	if m.PrevIndex > n.LastIndex() || n.termAt(m.PrevIndex) != m.PrevTerm {
		// Log doesn't contain the leader's anchor point: reject with a
		// back-up hint so the leader jumps next[] down in one round trip
		// instead of decrementing once per append.
		hint := n.LastIndex()
		if m.PrevIndex > 0 && m.PrevIndex-1 < hint {
			hint = m.PrevIndex - 1
		}
		resp.MatchIndex = hint
		return []Message{resp}
	}
	for _, e := range m.Entries {
		switch {
		case e.Index <= n.LastIndex() && n.termAt(e.Index) == e.Term:
			// Already have it.
		case e.Index <= n.LastIndex():
			// Conflict: truncate our divergent suffix and take the
			// leader's entry. Committed entries never conflict (Raft's
			// Log Matching property), so this never rewinds commit.
			n.log = append(n.log[:e.Index-1], e)
		default:
			n.log = append(n.log, e)
		}
	}
	lastNew := m.PrevIndex + uint64(len(m.Entries))
	if m.Commit > n.commit {
		c := m.Commit
		if c > lastNew {
			// Only trust commit up to what this append proved matches.
			c = lastNew
		}
		if c > n.commit {
			n.commit = c
		}
	}
	resp.Success = true
	resp.MatchIndex = lastNew
	return []Message{resp}
}

func (n *Node) onAppResp(m Message) []Message {
	if n.state != Leader || m.Term != n.term {
		return nil
	}
	if m.Success {
		if m.MatchIndex > n.match[m.From] {
			n.match[m.From] = m.MatchIndex
		}
		if n.match[m.From]+1 > n.next[m.From] {
			n.next[m.From] = n.match[m.From] + 1
		}
		n.maybeCommit()
		if n.next[m.From] <= n.LastIndex() {
			// The follower is still behind (this ack covered an older
			// batch); push the rest now.
			return []Message{n.appendTo(m.From)}
		}
		return nil
	}
	// Rejected: back up next[] using the follower's hint and retry.
	hint := m.MatchIndex + 1
	if hint < n.next[m.From] {
		n.next[m.From] = hint
	} else if n.next[m.From] > 1 {
		n.next[m.From]--
	}
	if n.next[m.From] < 1 {
		n.next[m.From] = 1
	}
	return []Message{n.appendTo(m.From)}
}

func (n *Node) maybeCommit() {
	for idx := n.LastIndex(); idx > n.commit; idx-- {
		if n.termAt(idx) != n.term {
			// Entries from older terms only commit via a newer-term entry
			// above them; own-term entries are a contiguous suffix, so
			// stop once we leave it.
			return
		}
		cnt := 0
		for _, m := range n.match {
			if m >= idx {
				cnt++
			}
		}
		if n.quorum(cnt) {
			n.commit = idx
			return
		}
	}
}

func (n *Node) broadcastAppend() []Message {
	if n.cfg.Peers == 1 {
		return nil
	}
	msgs := make([]Message, 0, n.cfg.Peers-1)
	for id := 0; id < n.cfg.Peers; id++ {
		if id == n.cfg.ID {
			continue
		}
		msgs = append(msgs, n.appendTo(id))
	}
	return msgs
}

// appendTo builds the append/heartbeat for one peer, carrying every entry
// from the peer's next cursor onward (the log is control-plane sized, so no
// batch cap is needed).
func (n *Node) appendTo(id int) Message {
	prev := n.next[id] - 1
	var ents []Entry
	if n.next[id] <= n.LastIndex() {
		ents = make([]Entry, n.LastIndex()-prev)
		copy(ents, n.log[prev:])
	}
	return Message{
		Type:      MsgApp,
		From:      n.cfg.ID,
		To:        id,
		Term:      n.term,
		PrevIndex: prev,
		PrevTerm:  n.termAt(prev),
		Commit:    n.commit,
		Entries:   ents,
	}
}
