package consensus

import (
	"testing"
)

// cfg3 builds a 3-node config for node id with deterministic timing.
func cfg3(id int) Config {
	return Config{
		ID:              id,
		Peers:           3,
		BootstrapLeader: 0,
		Seed:            42,
	}
}

// coldCfg3 is a 3-node cold-start config (no bootstrap leader).
func coldCfg3(id int) Config {
	c := cfg3(id)
	c.BootstrapLeader = None
	return c
}

// tickUntilCampaign ticks n until it emits messages (its election fired),
// failing the test if it never does.
func tickUntilCampaign(t *testing.T, n *Node) []Message {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		if msgs := n.Tick(); len(msgs) > 0 {
			return msgs
		}
	}
	t.Fatal("node never campaigned")
	return nil
}

func TestBootstrapRoles(t *testing.T) {
	l := NewNode(cfg3(0))
	if l.State() != Leader || l.Term() != 1 || l.Leader() != 0 {
		t.Fatalf("replica 0: state=%v term=%d leader=%d, want bootstrap leader of term 1", l.State(), l.Term(), l.Leader())
	}
	if l.LastIndex() != 1 || l.termAt(1) != 1 || l.log[0].Cmd != nil {
		t.Fatalf("bootstrap leader log = %+v, want one term-1 no-op", l.log)
	}
	f := NewNode(cfg3(1))
	if f.State() != Follower || f.Term() != 1 || f.Leader() != 0 {
		t.Fatalf("replica 1: state=%v term=%d leader=%d, want follower of replica 0", f.State(), f.Term(), f.Leader())
	}
}

func TestSingleNodeProposeCommitsImmediately(t *testing.T) {
	n := NewNode(Config{ID: 0, Peers: 1, BootstrapLeader: 0})
	idx, term, msgs, ok := n.Propose([]byte("x"))
	if !ok || term != 1 || idx != 2 { // index 1 is the bootstrap no-op
		t.Fatalf("Propose = (%d, %d, ok=%v), want (2, 1, true)", idx, term, ok)
	}
	if len(msgs) != 0 {
		t.Fatalf("single-node propose emitted %d messages", len(msgs))
	}
	if n.Commit() != 2 {
		t.Fatalf("commit = %d, want 2", n.Commit())
	}
	ents := n.TakeCommitted()
	if len(ents) != 2 || string(ents[1].Cmd) != "x" {
		t.Fatalf("TakeCommitted = %+v, want no-op + x", ents)
	}
	if got := n.TakeCommitted(); got != nil {
		t.Fatalf("second TakeCommitted = %+v, want nil", got)
	}
}

// TestElectionAfterTimeout walks a full election by hand: follower 1 times
// out, campaigns in term 2, wins with follower 2's vote, and emits appends.
func TestElectionAfterTimeout(t *testing.T) {
	n1 := NewNode(coldCfg3(1))
	n2 := NewNode(coldCfg3(2))

	msgs := tickUntilCampaign(t, n1)
	if n1.State() != Candidate || n1.Term() != 1 {
		t.Fatalf("after timeout: state=%v term=%d, want candidate term 1", n1.State(), n1.Term())
	}
	if len(msgs) != 2 || msgs[0].Type != MsgVote || msgs[1].Type != MsgVote {
		t.Fatalf("campaign messages = %+v, want 2 vote requests", msgs)
	}

	var vote Message
	for _, m := range msgs {
		if m.To == 2 {
			vote = m
		}
	}
	resp := n2.Step(vote)
	if len(resp) != 1 || resp[0].Type != MsgVoteResp || !resp[0].Granted {
		t.Fatalf("voter response = %+v, want granted vote", resp)
	}

	out := n1.Step(resp[0])
	if n1.State() != Leader || n1.Leader() != 1 {
		t.Fatalf("after quorum: state=%v leader=%d, want leader 1", n1.State(), n1.Leader())
	}
	if len(out) != 2 || out[0].Type != MsgApp {
		t.Fatalf("new leader output = %+v, want immediate appends", out)
	}
	if n1.LastIndex() != 1 || n1.log[0].Cmd != nil {
		t.Fatalf("new leader log = %+v, want the term-1 no-op", n1.log)
	}
}

// TestVoteTable drives the vote-granting rules through the paper's §5.2/§5.4
// cases: term checks, single vote per term, and the up-to-date log check.
func TestVoteTable(t *testing.T) {
	withLog := func(entries ...uint64) func(*Node) {
		return func(n *Node) {
			for _, term := range entries {
				n.log = append(n.log, Entry{Term: term, Index: n.LastIndex() + 1})
			}
		}
	}
	cases := []struct {
		name  string
		setup func(*Node) // voter starts as cold follower, term 0
		req   Message
		grant bool
	}{
		{
			"grants fresh candidate",
			nil,
			Message{Type: MsgVote, From: 1, Term: 1},
			true,
		},
		{
			"rejects stale term",
			func(n *Node) { n.term = 5 },
			Message{Type: MsgVote, From: 1, Term: 3},
			false,
		},
		{
			"rejects second candidate same term",
			func(n *Node) { n.term = 2; n.votedFor = 2 },
			Message{Type: MsgVote, From: 1, Term: 2},
			false,
		},
		{
			"re-grants same candidate same term",
			func(n *Node) { n.term = 2; n.votedFor = 1 },
			Message{Type: MsgVote, From: 1, Term: 2},
			true,
		},
		{
			"rejects shorter log",
			withLog(1, 1),
			Message{Type: MsgVote, From: 1, Term: 2, LastLogIndex: 1, LastLogTerm: 1},
			false,
		},
		{
			"rejects lower last term despite longer log",
			withLog(1, 2),
			Message{Type: MsgVote, From: 1, Term: 3, LastLogIndex: 10, LastLogTerm: 1},
			false,
		},
		{
			"grants equal log",
			withLog(1, 2),
			Message{Type: MsgVote, From: 1, Term: 3, LastLogIndex: 2, LastLogTerm: 2},
			true,
		},
		{
			"grants higher last term despite shorter log",
			withLog(1, 1, 1),
			Message{Type: MsgVote, From: 1, Term: 3, LastLogIndex: 1, LastLogTerm: 2},
			true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := NewNode(coldCfg3(0))
			if tc.setup != nil {
				tc.setup(n)
			}
			tc.req.To = 0
			out := n.Step(tc.req)
			if len(out) != 1 || out[0].Type != MsgVoteResp {
				t.Fatalf("output = %+v, want one vote response", out)
			}
			if out[0].Granted != tc.grant {
				t.Fatalf("granted = %v, want %v", out[0].Granted, tc.grant)
			}
		})
	}
}

// TestLeaderStepsDownOnHigherTerm: any message from a newer term demotes a
// leader to follower.
func TestLeaderStepsDownOnHigherTerm(t *testing.T) {
	l := NewNode(cfg3(0))
	l.Step(Message{Type: MsgApp, From: 2, To: 0, Term: 9})
	if l.State() != Follower || l.Term() != 9 || l.Leader() != 2 {
		t.Fatalf("state=%v term=%d leader=%d, want follower of 2 in term 9", l.State(), l.Term(), l.Leader())
	}
}

// TestAppendConflictTruncation: a follower holding entries from a deposed
// leader truncates its divergent suffix and adopts the new leader's log.
func TestAppendConflictTruncation(t *testing.T) {
	f := NewNode(coldCfg3(2))
	// Divergent history: term-1 entries at 1..3 from a dead leader.
	f.term = 1
	f.log = []Entry{
		{Term: 1, Index: 1, Cmd: []byte("a")},
		{Term: 1, Index: 2, Cmd: []byte("stale-b")},
		{Term: 1, Index: 3, Cmd: []byte("stale-c")},
	}
	// New term-2 leader shares index 1 and overwrites from index 2.
	out := f.Step(Message{
		Type: MsgApp, From: 1, To: 2, Term: 2,
		PrevIndex: 1, PrevTerm: 1, Commit: 3,
		Entries: []Entry{
			{Term: 2, Index: 2, Cmd: []byte("b")},
			{Term: 2, Index: 3, Cmd: []byte("c")},
		},
	})
	if len(out) != 1 || !out[0].Success || out[0].MatchIndex != 3 {
		t.Fatalf("append response = %+v, want success match=3", out)
	}
	if f.LastIndex() != 3 || string(f.log[1].Cmd) != "b" || string(f.log[2].Cmd) != "c" {
		t.Fatalf("log after truncation = %+v", f.log)
	}
	if f.Commit() != 3 {
		t.Fatalf("commit = %d, want 3", f.Commit())
	}
}

// TestAppendRejectsMissingPrev: a gap produces a rejection with a back-up
// hint, and the leader uses the hint to retransmit from the follower's end.
func TestAppendRejectsMissingPrev(t *testing.T) {
	f := NewNode(coldCfg3(2))
	out := f.Step(Message{
		Type: MsgApp, From: 0, To: 2, Term: 1,
		PrevIndex: 5, PrevTerm: 1,
		Entries: []Entry{{Term: 1, Index: 6}},
	})
	if len(out) != 1 || out[0].Success {
		t.Fatalf("append response = %+v, want rejection", out)
	}
	if out[0].MatchIndex != 0 {
		t.Fatalf("back-up hint = %d, want 0 (empty log)", out[0].MatchIndex)
	}

	// The leader reacts by rewinding next[] and resending from index 1.
	l := NewNode(cfg3(0))
	for i := 0; i < 4; i++ {
		l.Propose([]byte{byte(i)})
	}
	l.next[2] = 6 // pretend we'd optimistically advanced
	retry := l.Step(Message{Type: MsgAppResp, From: 2, To: 0, Term: 1, Success: false, MatchIndex: 0})
	if len(retry) != 1 || retry[0].PrevIndex != 0 || len(retry[0].Entries) != 5 {
		t.Fatalf("retry = %+v, want full log from index 1", retry)
	}
}

// TestCommitRequiresQuorumAndCurrentTerm: the leader commits once a
// majority matches, and only for entries of its own term.
func TestCommitRequiresQuorumAndCurrentTerm(t *testing.T) {
	l := NewNode(cfg3(0))
	idx, _, _, _ := l.Propose([]byte("x")) // index 2 (after bootstrap no-op)
	if l.Commit() != 0 {
		t.Fatalf("commit before any ack = %d, want 0", l.Commit())
	}
	l.Step(Message{Type: MsgAppResp, From: 1, To: 0, Term: 1, Success: true, MatchIndex: idx})
	if l.Commit() != idx {
		t.Fatalf("commit after one ack = %d, want %d (2/3 quorum)", l.Commit(), idx)
	}

	// Older-term entries must not commit by counting alone: a new leader
	// with an uncommitted term-1 entry cannot commit it until its own
	// term-2 no-op reaches quorum.
	n := NewNode(coldCfg3(1))
	n.term = 1
	n.log = []Entry{{Term: 1, Index: 1, Cmd: []byte("old")}}
	n.campaignForTest(t)
	// n is now a term-2 candidate; grant it the election.
	n.Step(Message{Type: MsgVoteResp, From: 2, To: 1, Term: n.Term(), Granted: true})
	if n.State() != Leader {
		t.Fatal("candidate did not win with quorum")
	}
	// Follower acks only the old term-1 entry.
	n.Step(Message{Type: MsgAppResp, From: 2, To: 1, Term: n.Term(), Success: true, MatchIndex: 1})
	if n.Commit() != 0 {
		t.Fatalf("commit = %d: committed an old-term entry by counting", n.Commit())
	}
	// Acking through the new no-op commits both.
	n.Step(Message{Type: MsgAppResp, From: 2, To: 1, Term: n.Term(), Success: true, MatchIndex: 2})
	if n.Commit() != 2 {
		t.Fatalf("commit = %d, want 2 after own-term entry reaches quorum", n.Commit())
	}
}

// campaignForTest forces an immediate campaign regardless of timers.
func (n *Node) campaignForTest(t *testing.T) {
	t.Helper()
	n.elapsed = n.timeout
	if msgs := n.Tick(); len(msgs) == 0 {
		t.Fatal("forced campaign emitted nothing")
	}
}

// TestStaggeredTimeouts pins the deterministic-succession property the
// golden leadership fixtures rely on: with the default stagger, replica 1
// always times out strictly before replica 2.
func TestStaggeredTimeouts(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c1, c2 := coldCfg3(1), coldCfg3(2)
		c1.Seed, c2.Seed = seed, seed
		n1, n2 := NewNode(c1), NewNode(c2)
		if n1.timeout >= n2.timeout {
			t.Fatalf("seed %d: timeout(1)=%d >= timeout(2)=%d; succession order not deterministic", seed, n1.timeout, n2.timeout)
		}
	}
}
