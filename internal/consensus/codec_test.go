package consensus

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// codecSamples covers every message type with populated fields; shared by
// the round-trip test and the fuzz seed corpus.
func codecSamples() []Message {
	return []Message{
		{Type: MsgVote, From: 1, To: 2, Term: 7, LastLogIndex: 42, LastLogTerm: 6},
		{Type: MsgVoteResp, From: 2, To: 1, Term: 7, Granted: true},
		{Type: MsgApp, From: 0, To: 2, Term: 9, PrevIndex: 10, PrevTerm: 8, Commit: 9, Entries: []Entry{
			{Term: 9, Index: 11, Cmd: []byte("hello")},
			{Term: 9, Index: 12}, // leadership no-op: nil Cmd
			{Term: 9, Index: 13, Cmd: bytes.Repeat([]byte{0xAB}, 300)},
		}},
		{Type: MsgAppResp, From: 2, To: 0, Term: 9, Success: true, MatchIndex: 13},
		{Type: MsgAppResp, From: 2, To: 0, Term: 9, Success: false, MatchIndex: 4},
		{Type: MsgApp, From: 1, To: 0, Term: 1}, // empty heartbeat
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	for _, m := range codecSamples() {
		m := m
		wire := EncodeMessage(&m)
		got, err := DecodeMessage(wire)
		if err != nil {
			t.Fatalf("decode %v: %v", m.Type, err)
		}
		if !reflect.DeepEqual(*got, m) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, m)
		}
		// Every truncation of a valid frame must error, never panic.
		for cut := 0; cut < len(wire); cut++ {
			if _, err := DecodeMessage(wire[:cut]); err == nil {
				t.Fatalf("%v truncated to %d bytes decoded successfully", m.Type, cut)
			} else if !errors.Is(err, ErrMsgWire) {
				t.Fatalf("truncation error %v does not wrap ErrMsgWire", err)
			}
		}
		// Trailing garbage is rejected: a frame is exactly one message.
		if _, err := DecodeMessage(append(append([]byte(nil), wire...), 0x00)); err == nil {
			t.Fatalf("%v with trailing byte decoded successfully", m.Type)
		}
	}
}

func TestMessageCodecRejects(t *testing.T) {
	base := codecSamples()[0]
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad version", func(b []byte) []byte { b[0] = 99; return b }},
		{"bad type", func(b []byte) []byte { b[1] = 0; return b }},
		{"unknown type", func(b []byte) []byte { b[1] = 200; return b }},
		{"unbacked entry count", func(b []byte) []byte {
			// Entry-count field is the last u32 of the fixed header.
			off := msgFixedSize - 4
			b[off], b[off+1], b[off+2], b[off+3] = 0xFF, 0xFF, 0x0F, 0x00
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wire := tc.mutate(EncodeMessage(&base))
			if _, err := DecodeMessage(wire); err == nil {
				t.Fatal("malformed frame decoded successfully")
			} else if !errors.Is(err, ErrMsgWire) {
				t.Fatalf("error %v does not wrap ErrMsgWire", err)
			}
		})
	}
}

// FuzzMessageCodec: DecodeMessage must never panic on arbitrary bytes, and
// everything it accepts must survive a re-encode/re-decode round trip
// unchanged (the canonical-form property the replica transport relies on).
func FuzzMessageCodec(f *testing.F) {
	for _, m := range codecSamples() {
		m := m
		f.Add(EncodeMessage(&m))
	}
	f.Add([]byte{})
	f.Add([]byte{msgWireVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			if !errors.Is(err, ErrMsgWire) {
				t.Fatalf("decode error %v does not wrap ErrMsgWire", err)
			}
			return
		}
		wire := EncodeMessage(m)
		m2, err := DecodeMessage(wire)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("canonical round trip diverged:\n got %+v\nwant %+v", m2, m)
		}
	})
}
