package consensus

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// simCluster is a deterministic in-memory cluster harness: it holds every
// in-flight message in a pool and lets a seeded RNG decide what happens
// next — deliver a random message (reordering), drop it, tick a random
// node, or propose on the current leader. Because nodes are passive state
// machines, the whole adversarial schedule replays bit-for-bit from the
// seed.
type simCluster struct {
	t     *testing.T
	nodes []*Node
	pool  []Message
	rng   *rand.Rand

	// applied[i] is node i's applied command sequence (no-ops excluded).
	applied [][][]byte
	// chosen is the cluster-wide committed command sequence: the first
	// node to apply index k fixes chosen[k], and every other node must
	// apply the identical command there (state-machine safety).
	chosen [][]byte
	// leadersByTerm enforces election safety: at most one leader per term.
	leadersByTerm map[uint64]int

	partitioned int // node id cut off from the network, or -1
}

func newSimCluster(t *testing.T, n int, seed int64, bootstrap bool) *simCluster {
	c := &simCluster{
		t:             t,
		rng:           rand.New(rand.NewSource(seed)),
		applied:       make([][][]byte, n),
		leadersByTerm: make(map[uint64]int),
		partitioned:   -1,
	}
	boot := None
	if bootstrap {
		boot = 0
	}
	for id := 0; id < n; id++ {
		c.nodes = append(c.nodes, NewNode(Config{
			ID:              id,
			Peers:           n,
			BootstrapLeader: boot,
			Seed:            seed,
		}))
	}
	for id := range c.nodes {
		c.observe(id)
	}
	return c
}

// observe records safety-relevant state after any step on node id.
func (c *simCluster) observe(id int) {
	c.t.Helper()
	n := c.nodes[id]
	if n.State() == Leader {
		if prev, seen := c.leadersByTerm[n.Term()]; seen && prev != id {
			c.t.Fatalf("election safety violated: term %d has leaders %d and %d", n.Term(), prev, id)
		}
		c.leadersByTerm[n.Term()] = id
	}
	for _, e := range n.TakeCommitted() {
		if e.Cmd == nil {
			continue
		}
		pos := len(c.applied[id])
		if pos < len(c.chosen) {
			if !bytes.Equal(c.chosen[pos], e.Cmd) {
				c.t.Fatalf("state-machine safety violated: node %d applied %q at position %d, cluster chose %q",
					id, e.Cmd, pos, c.chosen[pos])
			}
		} else {
			c.chosen = append(c.chosen, e.Cmd)
		}
		c.applied[id] = append(c.applied[id], e.Cmd)
	}
}

// blocked reports whether traffic between two nodes is cut by the active
// partition.
func (c *simCluster) blocked(a, b int) bool {
	return c.partitioned >= 0 && (a == c.partitioned || b == c.partitioned)
}

func (c *simCluster) enqueue(msgs []Message) {
	for _, m := range msgs {
		if c.blocked(m.From, m.To) {
			continue
		}
		// Round-trip every message through the wire codec so the
		// simulator also exercises EncodeMessage/DecodeMessage exactly as
		// the netblock transport would.
		dec, err := DecodeMessage(EncodeMessage(&m))
		if err != nil {
			c.t.Fatalf("wire round trip failed for %+v: %v", m, err)
		}
		c.pool = append(c.pool, *dec)
	}
}

func (c *simCluster) tick(id int) {
	c.enqueue(c.nodes[id].Tick())
	c.observe(id)
}

// deliverRandom pops a uniformly random in-flight message (this is the
// reordering adversary) and steps its destination.
func (c *simCluster) deliverRandom() {
	if len(c.pool) == 0 {
		return
	}
	i := c.rng.Intn(len(c.pool))
	m := c.pool[i]
	c.pool[i] = c.pool[len(c.pool)-1]
	c.pool = c.pool[:len(c.pool)-1]
	if c.blocked(m.From, m.To) {
		return
	}
	c.enqueue(c.nodes[m.To].Step(m))
	c.observe(m.To)
}

// proposeOnLeader proposes cmd on whichever node currently leads, if any.
func (c *simCluster) proposeOnLeader(cmd []byte) bool {
	for id, n := range c.nodes {
		if n.State() == Leader && id != c.partitioned {
			if _, _, msgs, ok := n.Propose(cmd); ok {
				c.enqueue(msgs)
				c.observe(id)
				return true
			}
		}
	}
	return false
}

// settle runs fault-free rounds (tick everyone, deliver everything in
// order) until the cluster converges or the round budget runs out.
func (c *simCluster) settle(maxRounds int) {
	c.partitioned = -1
	for round := 0; round < maxRounds; round++ {
		for id := range c.nodes {
			c.tick(id)
		}
		for len(c.pool) > 0 {
			m := c.pool[0]
			c.pool = c.pool[1:]
			c.enqueue(c.nodes[m.To].Step(m))
			c.observe(m.To)
		}
		if c.converged() {
			return
		}
	}
}

func (c *simCluster) converged() bool {
	for id := 1; id < len(c.nodes); id++ {
		if len(c.applied[id]) != len(c.applied[0]) {
			return false
		}
	}
	return len(c.applied[0]) > 0
}

// TestScrambledNetworkConvergence is the randomized-but-seeded adversary:
// thousands of steps of reordered delivery, 10% message loss, scheduled
// partitions isolating each node in turn, and proposals whenever a leader
// exists — then a healing phase. Election safety and state-machine safety
// are asserted at every step; convergence and progress at the end. Each
// seed is an independent deterministic universe.
func TestScrambledNetworkConvergence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newSimCluster(t, 3, seed, true)
			proposed := 0
			for step := 0; step < 6000; step++ {
				// Partition schedule: isolate node 0, then 1, then 2,
				// with healed gaps in between.
				switch step {
				case 1000:
					c.partitioned = 0
				case 2000:
					c.partitioned = -1
				case 2500:
					c.partitioned = 1
				case 3500:
					c.partitioned = -1
				case 4000:
					c.partitioned = 2
				case 5000:
					c.partitioned = -1
				}
				switch r := c.rng.Intn(100); {
				case r < 30:
					c.tick(c.rng.Intn(len(c.nodes)))
				case r < 40:
					// Drop: discard a random in-flight message.
					if len(c.pool) > 0 {
						i := c.rng.Intn(len(c.pool))
						c.pool[i] = c.pool[len(c.pool)-1]
						c.pool = c.pool[:len(c.pool)-1]
					}
				case r < 95:
					c.deliverRandom()
				default:
					if c.proposeOnLeader([]byte(fmt.Sprintf("cmd-%d", proposed))) {
						proposed++
					}
				}
			}
			c.settle(500)
			if !c.converged() {
				t.Fatalf("cluster did not converge: applied lengths %d/%d/%d, %d in flight",
					len(c.applied[0]), len(c.applied[1]), len(c.applied[2]), len(c.pool))
			}
			if proposed == 0 {
				t.Fatal("adversary never managed a proposal; schedule too hostile to mean anything")
			}
			// All nodes applied the identical sequence (observe() already
			// checked prefix equality; check completeness).
			for id := range c.nodes {
				if len(c.applied[id]) != len(c.chosen) {
					t.Fatalf("node %d applied %d commands, cluster chose %d", id, len(c.applied[id]), len(c.chosen))
				}
			}
			t.Logf("seed %d: %d proposals issued, %d commands chosen, final term %d",
				seed, proposed, len(c.chosen), c.nodes[0].Term())
		})
	}
}

// TestLeaderKillFailover pins the exact scenario the fabric's chaos
// leader-kill relies on: kill the bootstrap leader mid-stream and the next
// replica in ID order takes over and commits the backlog.
func TestLeaderKillFailover(t *testing.T) {
	c := newSimCluster(t, 3, 99, true)
	// Replicate a few commands under the bootstrap leader.
	for i := 0; i < 3; i++ {
		if !c.proposeOnLeader([]byte{byte('a' + i)}) {
			t.Fatal("bootstrap leader refused proposal")
		}
		c.settle(50)
	}
	// Kill replica 0: permanent partition.
	c.partitioned = 0
	killAt := len(c.chosen)

	// Drive only the survivors until a new leader emerges and commits.
	for round := 0; round < 2000 && c.nodes[1].State() != Leader && c.nodes[2].State() != Leader; round++ {
		c.tick(1)
		c.tick(2)
		for len(c.pool) > 0 {
			m := c.pool[0]
			c.pool = c.pool[1:]
			if c.blocked(m.From, m.To) {
				continue
			}
			c.enqueue(c.nodes[m.To].Step(m))
			c.observe(m.To)
		}
	}
	if c.nodes[1].State() != Leader {
		t.Fatalf("replica 1 did not take over (states: %v %v %v)",
			c.nodes[0].State(), c.nodes[1].State(), c.nodes[2].State())
	}
	if !c.proposeOnLeader([]byte("post-kill")) {
		t.Fatal("new leader refused proposal")
	}
	// Survivors settle (replica 0 stays dead).
	for round := 0; round < 200; round++ {
		c.tick(1)
		c.tick(2)
		for len(c.pool) > 0 {
			m := c.pool[0]
			c.pool = c.pool[1:]
			if c.blocked(m.From, m.To) {
				continue
			}
			c.enqueue(c.nodes[m.To].Step(m))
			c.observe(m.To)
		}
		if len(c.applied[1]) > killAt && len(c.applied[2]) == len(c.applied[1]) {
			break
		}
	}
	if got := len(c.applied[1]); got != killAt+1 {
		t.Fatalf("survivor applied %d commands, want %d", got, killAt+1)
	}
	if !bytes.Equal(c.applied[1][killAt], []byte("post-kill")) {
		t.Fatalf("last applied = %q, want post-kill", c.applied[1][killAt])
	}
}
