package consensus

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Applier is the deterministic replicated state machine: Apply consumes one
// committed command (in log order, exactly once per index) and returns the
// reply the proposer should see. Apply runs under the Runner's lock, so it
// must not call back into the Runner.
type Applier interface {
	Apply(index uint64, cmd []byte) any
}

// Transport delivers one message toward its destination. Send must not
// block for long and may drop messages freely — the protocol retries; the
// fabric's implementation queues onto a bounded per-peer outbox.
type Transport interface {
	Send(m Message)
}

// Runner errors.
var (
	// ErrNotLeader is the errors.Is target for NotLeaderError.
	ErrNotLeader = errors.New("consensus: not the leader")
	// ErrStopped reports the runner was shut down (replica killed).
	ErrStopped = errors.New("consensus: node stopped")
	// ErrLeadershipLost reports a proposal's slot was committed by a
	// different leader's entry: the command did not commit here and must
	// be retried through the new leader.
	ErrLeadershipLost = errors.New("consensus: leadership lost before commit")
	// ErrCommitTimeout reports the proposal did not commit in time
	// (typically: no quorum reachable).
	ErrCommitTimeout = errors.New("consensus: commit timed out")
)

// NotLeaderError carries the rejecting node's leader hint.
type NotLeaderError struct {
	// Leader is the hinted leader ID, or None when unknown (election in
	// progress).
	Leader int
}

func (e *NotLeaderError) Error() string {
	if e.Leader == None {
		return "consensus: not the leader (no leader known)"
	}
	return fmt.Sprintf("consensus: not the leader (leader is replica %d)", e.Leader)
}

func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// RunnerConfig wires a Runner.
type RunnerConfig struct {
	Node      *Node
	FSM       Applier
	Transport Transport // may be nil for a single-node group
	// TickEvery is the real-time interval behind Node.Tick. <= 0 disables
	// the internal ticker (tests drive Tick manually; single-node groups
	// need no ticks at all).
	TickEvery time.Duration
	// OnBecomeLeader fires (outside the lock) when this node wins an
	// election or bootstraps as leader; the fabric records the
	// leadership-transition log from it.
	OnBecomeLeader func(term uint64, id int)
	// OnApply fires (outside the lock, in commit order) after each
	// non-empty command is applied; leader reports whether this node led
	// at apply time. The fabric's chaos leader-kill trigger hangs here.
	OnApply func(cmd []byte, reply any, leader bool)
}

// Runner drives a Node with a real ticker and transport, applies committed
// entries to the FSM, and parks proposers until their entry commits. It is
// the only goroutine-safe entry point to a node.
type Runner struct {
	mu      sync.Mutex
	node    *Node
	fsm     Applier
	tr      Transport
	waiters map[uint64]*commitWaiter

	onBecomeLeader func(term uint64, id int)
	onApply        func(cmd []byte, reply any, leader bool)
	wasLeader      bool

	stop     chan struct{}
	stopOnce sync.Once
	tickWG   sync.WaitGroup
}

type commitWaiter struct {
	term uint64
	ch   chan any // receives the FSM reply, or an error
}

// NewRunner constructs a Runner and, when cfg.TickEvery > 0, starts its
// ticker goroutine.
func NewRunner(cfg RunnerConfig) *Runner {
	r := &Runner{
		node:           cfg.Node,
		fsm:            cfg.FSM,
		tr:             cfg.Transport,
		waiters:        make(map[uint64]*commitWaiter),
		onBecomeLeader: cfg.OnBecomeLeader,
		onApply:        cfg.OnApply,
		stop:           make(chan struct{}),
	}
	// A bootstrap leader is already leading at construction; surface it
	// through the same callback as election wins.
	r.mu.Lock()
	notify := r.advanceLocked()
	r.mu.Unlock()
	runDeferred(notify)
	if cfg.TickEvery > 0 {
		r.tickWG.Add(1)
		go r.tickLoop(cfg.TickEvery)
	}
	return r
}

// Stop shuts the runner down: the ticker exits, every parked proposer
// fails with ErrStopped, and all later calls are rejected. Used both for
// orderly teardown and as the chaos "kill this replica" primitive.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() {
		close(r.stop)
		r.mu.Lock()
		for idx, w := range r.waiters {
			delete(r.waiters, idx)
			w.ch <- error(ErrStopped)
		}
		r.mu.Unlock()
	})
	r.tickWG.Wait()
}

// Done returns a channel closed when the runner stops — for callers that
// park (assign long-polls) and must wake when the replica is killed.
func (r *Runner) Done() <-chan struct{} { return r.stop }

// Stopped reports whether Stop was called.
func (r *Runner) Stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

func (r *Runner) tickLoop(every time.Duration) {
	defer r.tickWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Tick()
		}
	}
}

// Tick advances the node one logical beat. Exposed so tests (and the
// seeded simulator) can drive time manually.
func (r *Runner) Tick() {
	if r.Stopped() {
		return
	}
	r.mu.Lock()
	out := r.node.Tick()
	notify := r.advanceLocked()
	r.mu.Unlock()
	runDeferred(notify)
	r.send(out)
}

// Deliver feeds one incoming message (from the netblock handler) into the
// node and sends whatever the node wants transmitted in response.
func (r *Runner) Deliver(m Message) {
	if r.Stopped() {
		return
	}
	r.mu.Lock()
	out := r.node.Step(m)
	notify := r.advanceLocked()
	r.mu.Unlock()
	runDeferred(notify)
	r.send(out)
}

// Propose appends cmd to the replicated log and blocks until the entry
// commits and applies, returning the FSM's reply. On a non-leader it fails
// immediately with *NotLeaderError (carrying the leader hint) so the
// control-plane handler can answer with a redirect instead of stalling the
// worker.
func (r *Runner) Propose(cmd []byte, timeout time.Duration) (any, error) {
	if r.Stopped() {
		return nil, ErrStopped
	}
	r.mu.Lock()
	idx, term, msgs, ok := r.node.Propose(cmd)
	if !ok {
		leader := r.node.Leader()
		r.mu.Unlock()
		return nil, &NotLeaderError{Leader: leader}
	}
	w := &commitWaiter{term: term, ch: make(chan any, 1)}
	r.waiters[idx] = w
	notify := r.advanceLocked() // single-node groups commit right here
	r.mu.Unlock()
	runDeferred(notify)
	r.send(msgs)

	// Single-node groups (and any entry whose quorum was already in) commit
	// inline during advanceLocked above: the reply is already buffered, so
	// take it without paying for a timer on every proposal.
	select {
	case v := <-w.ch:
		if err, isErr := v.(error); isErr {
			return nil, err
		}
		return v, nil
	default:
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case v := <-w.ch:
		if err, isErr := v.(error); isErr {
			return nil, err
		}
		return v, nil
	case <-timer.C:
		r.mu.Lock()
		delete(r.waiters, idx)
		r.mu.Unlock()
		return nil, fmt.Errorf("%w (index %d, term %d)", ErrCommitTimeout, idx, term)
	case <-r.stop:
		return nil, ErrStopped
	}
}

// LeaderInfo returns the node's current leader hint and whether this node
// is that leader.
func (r *Runner) LeaderInfo() (leader int, isLeader bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.Leader(), r.node.State() == Leader
}

// Read runs f under the runner's lock, serialized against FSM application.
// The fabric uses it for consistent reads of its ledger state.
func (r *Runner) Read(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f()
}

// advanceLocked applies newly committed entries, resolves their waiters,
// and detects local leadership changes. It returns callbacks to run after
// the lock is released (user hooks must not run under the lock: the chaos
// leader-kill hook stops runners, which would deadlock).
func (r *Runner) advanceLocked() []func() {
	var deferred []func()
	for _, e := range r.node.TakeCommitted() {
		var reply any
		if len(e.Cmd) > 0 {
			reply = r.fsm.Apply(e.Index, e.Cmd)
		}
		if w, ok := r.waiters[e.Index]; ok {
			delete(r.waiters, e.Index)
			if w.term == e.Term {
				w.ch <- reply
			} else {
				// Our proposal's slot was filled by another leader's
				// entry: the command never committed.
				w.ch <- error(ErrLeadershipLost)
			}
		}
		if r.onApply != nil && len(e.Cmd) > 0 {
			cmd, rep := e.Cmd, reply
			leading := r.node.State() == Leader
			deferred = append(deferred, func() { r.onApply(cmd, rep, leading) })
		}
	}
	if r.node.State() == Leader && !r.wasLeader {
		r.wasLeader = true
		if r.onBecomeLeader != nil {
			term, id := r.node.Term(), r.node.ID()
			deferred = append(deferred, func() { r.onBecomeLeader(term, id) })
		}
	} else if r.node.State() != Leader {
		r.wasLeader = false
	}
	return deferred
}

func runDeferred(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}

func (r *Runner) send(msgs []Message) {
	if r.tr == nil || len(msgs) == 0 || r.Stopped() {
		return
	}
	for _, m := range msgs {
		r.tr.Send(m)
	}
}
