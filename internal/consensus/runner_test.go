package consensus

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// chanTransport wires runners directly: Send routes a message to the
// destination runner's Deliver on a fresh goroutine, like the netblock
// transport but without a wire.
type chanTransport struct {
	mu      sync.Mutex
	runners map[int]*Runner
	down    map[int]bool
	wg      sync.WaitGroup
}

func newChanTransport() *chanTransport {
	return &chanTransport{runners: make(map[int]*Runner), down: make(map[int]bool)}
}

func (t *chanTransport) Send(m Message) {
	t.mu.Lock()
	r := t.runners[m.To]
	dead := t.down[m.To] || t.down[m.From]
	t.mu.Unlock()
	if r == nil || dead {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		r.Deliver(m)
	}()
}

func (t *chanTransport) kill(id int) {
	t.mu.Lock()
	t.down[id] = true
	t.mu.Unlock()
}

// countFSM records applied commands.
type countFSM struct {
	mu   sync.Mutex
	cmds [][]byte
}

func (f *countFSM) Apply(index uint64, cmd []byte) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cmds = append(f.cmds, append([]byte(nil), cmd...))
	return len(f.cmds)
}

func (f *countFSM) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.cmds)
}

// startCluster boots n runner-driven replicas on real (fast) tickers.
func startCluster(t *testing.T, n int) (*chanTransport, []*Runner, []*countFSM, *sync.Mutex, *[]int) {
	t.Helper()
	tr := newChanTransport()
	fsms := make([]*countFSM, n)
	runners := make([]*Runner, n)
	var mu sync.Mutex
	var leaders []int
	for id := 0; id < n; id++ {
		fsms[id] = &countFSM{}
		node := NewNode(Config{ID: id, Peers: n, BootstrapLeader: 0, Seed: 7})
		runners[id] = NewRunner(RunnerConfig{
			Node:      node,
			FSM:       fsms[id],
			Transport: tr,
			TickEvery: 2 * time.Millisecond,
			OnBecomeLeader: func(term uint64, id int) {
				mu.Lock()
				leaders = append(leaders, id)
				mu.Unlock()
			},
		})
		tr.mu.Lock()
		tr.runners[id] = runners[id]
		tr.mu.Unlock()
	}
	t.Cleanup(func() {
		for _, r := range runners {
			r.Stop()
		}
		tr.wg.Wait()
	})
	return tr, runners, fsms, &mu, &leaders
}

// TestRunnerReplicatesAndFailsOver is the end-to-end runner test: proposals
// on the bootstrap leader apply everywhere; killing the leader elects
// replica 1, which then accepts proposals; the dead leader's runner rejects
// everything with ErrStopped; followers answer ErrNotLeader with a hint.
func TestRunnerReplicatesAndFailsOver(t *testing.T) {
	tr, runners, fsms, mu, leaders := startCluster(t, 3)

	if _, err := runners[1].Propose([]byte("nope"), time.Second); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower Propose error = %v, want ErrNotLeader", err)
	} else {
		var nle *NotLeaderError
		if !errors.As(err, &nle) || nle.Leader != 0 {
			t.Fatalf("follower redirect hint = %v, want leader 0", err)
		}
	}

	for i := 0; i < 5; i++ {
		reply, err := runners[0].Propose([]byte{byte(i)}, 2*time.Second)
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		if reply.(int) != i+1 {
			t.Fatalf("propose %d reply = %v, want %d", i, reply, i+1)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		return fsms[1].count() == 5 && fsms[2].count() == 5
	}, "followers did not apply all 5 commands")

	// Kill the leader: transport drops its traffic, runner stops.
	tr.kill(0)
	runners[0].Stop()
	if _, err := runners[0].Propose([]byte("dead"), time.Second); !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped Propose error = %v, want ErrStopped", err)
	}

	waitFor(t, 10*time.Second, func() bool {
		_, isLeader := runners[1].LeaderInfo()
		return isLeader
	}, "replica 1 did not take over")

	if _, err := runners[1].Propose([]byte("after"), 2*time.Second); err != nil {
		t.Fatalf("propose on new leader: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return fsms[2].count() == 6 }, "replica 2 did not apply post-failover command")

	mu.Lock()
	defer mu.Unlock()
	want := []int{0, 1}
	if len(*leaders) != 2 || (*leaders)[0] != 0 || (*leaders)[1] != 1 {
		t.Fatalf("leadership transitions = %v, want %v", *leaders, want)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}
