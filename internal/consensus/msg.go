package consensus

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType discriminates consensus messages.
type MsgType uint8

const (
	MsgVote MsgType = iota + 1
	MsgVoteResp
	MsgApp
	MsgAppResp
)

func (t MsgType) String() string {
	switch t {
	case MsgVote:
		return "vote"
	case MsgVoteResp:
		return "vote-resp"
	case MsgApp:
		return "append"
	case MsgAppResp:
		return "append-resp"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Valid reports whether t is a defined message type.
func (t MsgType) Valid() bool { return t >= MsgVote && t <= MsgAppResp }

// Message is one consensus datagram. A single struct covers all four types
// (unused fields stay zero), mirroring the raft paper's RPC arguments:
//
//	MsgVote:     Term, LastLogIndex, LastLogTerm
//	MsgVoteResp: Term, Granted
//	MsgApp:      Term, PrevIndex, PrevTerm, Commit, Entries
//	MsgAppResp:  Term, Success, MatchIndex (ack, or back-up hint on reject)
type Message struct {
	Type MsgType
	From int
	To   int
	Term uint64

	LastLogIndex uint64
	LastLogTerm  uint64
	Granted      bool

	PrevIndex uint64
	PrevTerm  uint64
	Commit    uint64
	Entries   []Entry

	Success    bool
	MatchIndex uint64
}

// ErrMsgWire is wrapped by every consensus frame decode failure.
var ErrMsgWire = errors.New("consensus: malformed message frame")

// Wire format (little endian), versioned so a mixed-version replica set
// fails loudly instead of misparsing:
//
//	u8 version | u8 type | u32 from | u32 to | u64 term |
//	u64 lastLogIndex | u64 lastLogTerm | u8 granted |
//	u64 prevIndex | u64 prevTerm | u64 commit |
//	u8 success | u64 matchIndex |
//	u32 nEntries | nEntries × (u64 term | u64 index | u32 cmdLen | cmd)
const msgWireVersion = 1

const msgFixedSize = 1 + 1 + 4 + 4 + 8 + 8 + 8 + 1 + 8 + 8 + 8 + 1 + 8 + 4

// maxWireEntries bounds the decoded entry count before any allocation is
// sized by it; combined with the per-entry fixed cost this keeps a hostile
// header from committing memory the frame doesn't back.
const maxWireEntries = 1 << 20

// EncodeMessage serializes m for the netblock wire.
func EncodeMessage(m *Message) []byte {
	size := msgFixedSize
	for i := range m.Entries {
		size += 8 + 8 + 4 + len(m.Entries[i].Cmd)
	}
	b := make([]byte, 0, size)
	b = append(b, msgWireVersion, byte(m.Type))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.From))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.To))
	b = binary.LittleEndian.AppendUint64(b, m.Term)
	b = binary.LittleEndian.AppendUint64(b, m.LastLogIndex)
	b = binary.LittleEndian.AppendUint64(b, m.LastLogTerm)
	b = append(b, boolByte(m.Granted))
	b = binary.LittleEndian.AppendUint64(b, m.PrevIndex)
	b = binary.LittleEndian.AppendUint64(b, m.PrevTerm)
	b = binary.LittleEndian.AppendUint64(b, m.Commit)
	b = append(b, boolByte(m.Success))
	b = binary.LittleEndian.AppendUint64(b, m.MatchIndex)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		b = binary.LittleEndian.AppendUint64(b, e.Term)
		b = binary.LittleEndian.AppendUint64(b, e.Index)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Cmd)))
		b = append(b, e.Cmd...)
	}
	return b
}

// DecodeMessage parses a wire frame back into a Message. Every malformed
// input returns an error wrapping ErrMsgWire; no input may panic or cause
// an allocation sized by an unbacked length claim (the fuzz target pins
// both properties).
func DecodeMessage(data []byte) (*Message, error) {
	r := msgReader{b: data}
	ver := r.u8()
	typ := MsgType(r.u8())
	m := &Message{Type: typ}
	m.From = int(int32(r.u32()))
	m.To = int(int32(r.u32()))
	m.Term = r.u64()
	m.LastLogIndex = r.u64()
	m.LastLogTerm = r.u64()
	m.Granted = r.u8() != 0
	m.PrevIndex = r.u64()
	m.PrevTerm = r.u64()
	m.Commit = r.u64()
	m.Success = r.u8() != 0
	m.MatchIndex = r.u64()
	nEntries := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if ver != msgWireVersion {
		return nil, fmt.Errorf("%w: version %d", ErrMsgWire, ver)
	}
	if !typ.Valid() {
		return nil, fmt.Errorf("%w: type %d", ErrMsgWire, uint8(typ))
	}
	if nEntries > maxWireEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrMsgWire, nEntries)
	}
	// Each entry costs at least its 20-byte header on the wire, so the
	// claimed count must be backed by remaining bytes before we size any
	// slice by it.
	if uint64(nEntries)*20 > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("%w: %d entries in %d bytes", ErrMsgWire, nEntries, len(r.b)-r.off)
	}
	if nEntries > 0 {
		m.Entries = make([]Entry, nEntries)
		for i := range m.Entries {
			e := &m.Entries[i]
			e.Term = r.u64()
			e.Index = r.u64()
			cmdLen := r.u32()
			cmd := r.take(cmdLen)
			if r.err != nil {
				return nil, r.err
			}
			if cmdLen > 0 {
				e.Cmd = append([]byte(nil), cmd...)
			}
		}
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMsgWire, len(r.b)-r.off)
	}
	return m, nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// msgReader is a bounds-checked little-endian cursor; the first failure
// sticks in err and poisons every later read.
type msgReader struct {
	b   []byte
	off int
	err error
}

func (r *msgReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrMsgWire, r.off)
	}
}

func (r *msgReader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *msgReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *msgReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *msgReader) take(n uint32) []byte {
	if r.err != nil || uint64(r.off)+uint64(n) > uint64(len(r.b)) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}
