package storage

import (
	"fmt"
	"sort"
)

// SegKey names a segment hosted on a BlockServer. Callers typically use the
// topology's SegmentID values, but the storage layer does not depend on the
// cluster package.
type SegKey int32

// BlockServer is the forwarding-layer process of one storage node (§2.1):
// it hosts segment files, translates segment-relative block IO into
// ChunkServer appends/reads, garbage-collects its node's chunks, serves
// sequential large reads from a prefetch cache, and supports migrating
// segments to another BlockServer.
type BlockServer struct {
	cs       *ChunkServer
	segments map[SegKey]*SegmentFile
	prefetch *Prefetcher

	// Traffic counters since creation (bytes).
	readBytes, writeBytes int64
	prefetchHits          int64
}

// NewBlockServer creates a BlockServer over its co-located ChunkServer.
func NewBlockServer(cs *ChunkServer) *BlockServer {
	return &BlockServer{
		cs:       cs,
		segments: make(map[SegKey]*SegmentFile),
		prefetch: NewPrefetcher(DefaultPrefetchConfig()),
	}
}

// ChunkServer exposes the underlying engine (for stats and tests).
func (bs *BlockServer) ChunkServer() *ChunkServer { return bs.cs }

// AddSegment creates an empty segment file of the given size. It fails if
// the key already exists.
func (bs *BlockServer) AddSegment(key SegKey, size int64) error {
	if _, ok := bs.segments[key]; ok {
		return fmt.Errorf("storage: segment %d already hosted", key)
	}
	sf, err := NewSegmentFile(size)
	if err != nil {
		return err
	}
	bs.segments[key] = sf
	return nil
}

// HasSegment reports whether key is hosted here.
func (bs *BlockServer) HasSegment(key SegKey) bool {
	_, ok := bs.segments[key]
	return ok
}

// Segments returns the hosted segment keys in ascending order.
func (bs *BlockServer) Segments() []SegKey {
	out := make([]SegKey, 0, len(bs.segments))
	for k := range bs.segments {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Write stores data at the segment-relative offset.
func (bs *BlockServer) Write(key SegKey, off int64, data []byte) error {
	sf, ok := bs.segments[key]
	if !ok {
		return fmt.Errorf("storage: write to unhosted segment %d", key)
	}
	if err := sf.Write(bs.cs, off, data); err != nil {
		return err
	}
	bs.writeBytes += int64(len(data))
	bs.prefetch.Invalidate(key, off, int64(len(data)))
	return nil
}

// Read fills dst from the segment-relative offset. Sequential large reads
// are detected per segment; once a run is established, subsequent data is
// prefetched so the ChunkServer round trip is skipped (§2.2). Read reports
// whether the request was served from the prefetch cache.
func (bs *BlockServer) Read(key SegKey, off int64, dst []byte) (fromCache bool, err error) {
	sf, ok := bs.segments[key]
	if !ok {
		return false, fmt.Errorf("storage: read from unhosted segment %d", key)
	}
	bs.readBytes += int64(len(dst))
	if bs.prefetch.Serve(key, off, dst) {
		bs.prefetchHits += int64(len(dst))
		bs.prefetch.Observe(key, off, int64(len(dst)))
		return true, nil
	}
	if err := sf.Read(bs.cs, off, dst); err != nil {
		return false, err
	}
	// Feed the sequential detector and, if it fires, load ahead.
	if next, n := bs.prefetch.Observe(key, off, int64(len(dst))); n > 0 {
		if next+n > sf.Size() {
			n = sf.Size() - next
		}
		if n > 0 {
			buf := make([]byte, n)
			if err := sf.Read(bs.cs, next, buf); err == nil {
				bs.prefetch.Fill(key, next, buf)
			}
		}
	}
	return false, nil
}

// CollectGarbage rewrites live data out of every sealed chunk whose garbage
// ratio exceeds threshold, then frees those chunks. It returns the number of
// chunks reclaimed.
func (bs *BlockServer) CollectGarbage(threshold float64) (int, error) {
	victims := bs.cs.SealedChunksAbove(threshold)
	for _, id := range victims {
		for _, sf := range bs.segments {
			if _, err := sf.rewriteChunk(bs.cs, id); err != nil {
				return 0, err
			}
		}
		bs.cs.Free(id)
	}
	return len(victims), nil
}

// MigrateSegment moves the segment to dst: its live data is read here and
// re-appended on dst's ChunkServer, the local extents are marked dead, and
// the local file is dropped. This models the paper's balancer migrations
// ("the migration temporarily halts the service", §6.1.1 — the simulator
// accounts that cost separately).
func (bs *BlockServer) MigrateSegment(key SegKey, dst *BlockServer) error {
	sf, ok := bs.segments[key]
	if !ok {
		return fmt.Errorf("storage: migrate unhosted segment %d", key)
	}
	if dst == bs {
		return fmt.Errorf("storage: segment %d migration to self", key)
	}
	if err := dst.AddSegment(key, sf.size); err != nil {
		return err
	}
	dstFile := dst.segments[key]
	buf := make([]byte, BlockSize)
	for blockOff, br := range sf.blocks {
		src, err := bs.cs.ReadExtent(ExtentRef{Chunk: br.ref.Chunk, Offset: br.ref.Offset + int64(br.off), Len: BlockSize})
		if err != nil {
			return fmt.Errorf("storage: migrate read: %w", err)
		}
		copy(buf, src)
		if err := dstFile.Write(dst.cs, blockOff, buf); err != nil {
			return fmt.Errorf("storage: migrate write: %w", err)
		}
		bs.cs.MarkDead(ExtentRef{Chunk: br.ref.Chunk, Offset: br.ref.Offset + int64(br.off), Len: BlockSize})
	}
	delete(bs.segments, key)
	bs.prefetch.Drop(key)
	return nil
}

// Traffic returns cumulative read/write byte counters and prefetch hits.
func (bs *BlockServer) Traffic() (readBytes, writeBytes, prefetchHitBytes int64) {
	return bs.readBytes, bs.writeBytes, bs.prefetchHits
}
