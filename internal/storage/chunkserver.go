// Package storage implements the storage-cluster substrate the paper's EBS
// runs on (§2.1): a node-level append-only storage engine (ChunkServer), a
// log-structured segment file abstraction with block-granular indexing, and
// a BlockServer that translates block IO into file operations, migrates
// segments between nodes for load balancing, performs garbage collection of
// the append-only chunks, and prefetches sequential large reads (§2.2).
//
// The engine holds data in memory; it is a functional substrate for
// correctness-level simulation and testing, not a persistence layer.
package storage

import (
	"errors"
	"fmt"
)

// ChunkID names one append-only chunk within a ChunkServer.
type ChunkID int32

// ExtentRef locates a contiguous byte extent within a chunk.
type ExtentRef struct {
	Chunk  ChunkID
	Offset int64
	Len    int32
}

// Errors returned by the storage engine.
var (
	ErrExtentTooLarge = errors.New("storage: extent exceeds chunk size")
	ErrBadExtent      = errors.New("storage: extent out of bounds")
	ErrChunkFreed     = errors.New("storage: chunk already freed")
)

// chunk is one append-only unit of the ChunkServer.
type chunk struct {
	data      []byte
	sealed    bool
	freed     bool
	liveBytes int64 // bytes appended minus bytes marked dead
	deadBytes int64
}

// ChunkServer is the node-level append-only storage engine. All methods are
// single-goroutine; callers that share a ChunkServer across goroutines must
// serialize access (the simulator does).
type ChunkServer struct {
	chunkSize int64
	chunks    []*chunk
	open      ChunkID // index of the currently-open chunk, -1 if none
}

// NewChunkServer creates an engine whose chunks hold chunkSize bytes each.
func NewChunkServer(chunkSize int64) *ChunkServer {
	if chunkSize <= 0 {
		panic("storage: chunk size must be positive")
	}
	return &ChunkServer{chunkSize: chunkSize, open: -1}
}

// Append writes data to the open chunk (sealing and rolling over as needed)
// and returns a stable reference to it.
func (cs *ChunkServer) Append(data []byte) (ExtentRef, error) {
	if int64(len(data)) > cs.chunkSize {
		return ExtentRef{}, fmt.Errorf("%w: %d > %d", ErrExtentTooLarge, len(data), cs.chunkSize)
	}
	if cs.open < 0 || int64(len(cs.chunks[cs.open].data))+int64(len(data)) > cs.chunkSize {
		if cs.open >= 0 {
			cs.chunks[cs.open].sealed = true
		}
		cs.chunks = append(cs.chunks, &chunk{data: make([]byte, 0, cs.chunkSize)})
		cs.open = ChunkID(len(cs.chunks) - 1)
	}
	c := cs.chunks[cs.open]
	ref := ExtentRef{Chunk: cs.open, Offset: int64(len(c.data)), Len: int32(len(data))}
	c.data = append(c.data, data...)
	c.liveBytes += int64(len(data))
	return ref, nil
}

// ReadExtent returns the bytes of ref. The returned slice aliases engine
// memory and must not be modified.
func (cs *ChunkServer) ReadExtent(ref ExtentRef) ([]byte, error) {
	if int(ref.Chunk) < 0 || int(ref.Chunk) >= len(cs.chunks) {
		return nil, ErrBadExtent
	}
	c := cs.chunks[ref.Chunk]
	if c.freed {
		return nil, ErrChunkFreed
	}
	end := ref.Offset + int64(ref.Len)
	if ref.Offset < 0 || end > int64(len(c.data)) {
		return nil, ErrBadExtent
	}
	return c.data[ref.Offset:end], nil
}

// MarkDead records that ref's bytes are no longer referenced; garbage
// collection uses the resulting per-chunk garbage ratios.
func (cs *ChunkServer) MarkDead(ref ExtentRef) {
	if int(ref.Chunk) < 0 || int(ref.Chunk) >= len(cs.chunks) {
		return
	}
	c := cs.chunks[ref.Chunk]
	c.liveBytes -= int64(ref.Len)
	c.deadBytes += int64(ref.Len)
}

// GarbageRatio returns the fraction of chunk bytes that are dead, or 0 for
// an empty chunk.
func (cs *ChunkServer) GarbageRatio(id ChunkID) float64 {
	c := cs.chunks[id]
	total := c.liveBytes + c.deadBytes
	if total == 0 {
		return 0
	}
	return float64(c.deadBytes) / float64(total)
}

// SealedChunksAbove returns sealed, unfreed chunks whose garbage ratio
// exceeds threshold; these are GC candidates. The open chunk is never a
// candidate.
func (cs *ChunkServer) SealedChunksAbove(threshold float64) []ChunkID {
	var out []ChunkID
	for i, c := range cs.chunks {
		if c.sealed && !c.freed && cs.GarbageRatio(ChunkID(i)) > threshold {
			out = append(out, ChunkID(i))
		}
	}
	return out
}

// Free releases a chunk after GC rewrote its live data elsewhere. Reading a
// freed chunk fails with ErrChunkFreed.
func (cs *ChunkServer) Free(id ChunkID) {
	c := cs.chunks[id]
	c.freed = true
	c.data = nil
	c.liveBytes = 0
	c.deadBytes = 0
}

// Stats summarizes engine space accounting.
type Stats struct {
	Chunks     int
	FreedChunk int
	LiveBytes  int64
	DeadBytes  int64
}

// Stats returns current space accounting.
func (cs *ChunkServer) Stats() Stats {
	var s Stats
	s.Chunks = len(cs.chunks)
	for _, c := range cs.chunks {
		if c.freed {
			s.FreedChunk++
			continue
		}
		s.LiveBytes += c.liveBytes
		s.DeadBytes += c.deadBytes
	}
	return s
}
