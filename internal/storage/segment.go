package storage

import (
	"errors"
	"fmt"
)

// BlockSize is the granularity of the segment file's LBA index (4 KiB, the
// usual virtual-block size).
const BlockSize = 4 << 10

// blockRef locates one logical block's current data: a byte position inside
// an appended extent.
type blockRef struct {
	ref ExtentRef
	off int32 // offset of this block within the extent
}

// SegmentFile is the BlockServer-side representation of one 32 GiB (or
// smaller) segment: a log-structured file mapping block-aligned logical
// offsets to extents appended on the ChunkServer. Unwritten blocks read as
// zeroes, like a sparse file.
type SegmentFile struct {
	size   int64 // logical size in bytes
	blocks map[int64]blockRef
}

// NewSegmentFile creates an empty segment file of the given logical size,
// which must be a positive multiple of BlockSize.
func NewSegmentFile(size int64) (*SegmentFile, error) {
	if size <= 0 || size%BlockSize != 0 {
		return nil, fmt.Errorf("storage: segment size %d must be a positive multiple of %d", size, BlockSize)
	}
	return &SegmentFile{size: size, blocks: make(map[int64]blockRef)}, nil
}

// Size returns the logical size of the segment in bytes.
func (sf *SegmentFile) Size() int64 { return sf.size }

// WrittenBlocks returns how many distinct blocks have been written.
func (sf *SegmentFile) WrittenBlocks() int { return len(sf.blocks) }

// errAlignment is returned for IO that is not block aligned.
var errAlignment = errors.New("storage: IO must be block-aligned")

// checkRange validates an IO against the segment bounds and alignment.
func (sf *SegmentFile) checkRange(off int64, n int) error {
	if off%BlockSize != 0 || n%BlockSize != 0 || n == 0 {
		return fmt.Errorf("%w: off=%d len=%d", errAlignment, off, n)
	}
	if off < 0 || off+int64(n) > sf.size {
		return fmt.Errorf("storage: IO [%d,%d) outside segment size %d", off, off+int64(n), sf.size)
	}
	return nil
}

// Write appends data for the block range starting at off to cs and updates
// the index, marking superseded extents dead.
func (sf *SegmentFile) Write(cs *ChunkServer, off int64, data []byte) error {
	if err := sf.checkRange(off, len(data)); err != nil {
		return err
	}
	ref, err := cs.Append(data)
	if err != nil {
		return err
	}
	for b := 0; b < len(data)/BlockSize; b++ {
		blockOff := off + int64(b)*BlockSize
		if old, ok := sf.blocks[blockOff]; ok {
			cs.MarkDead(ExtentRef{Chunk: old.ref.Chunk, Offset: old.ref.Offset + int64(old.off), Len: BlockSize})
		}
		sf.blocks[blockOff] = blockRef{ref: ref, off: int32(b * BlockSize)}
	}
	return nil
}

// Read fills dst with the segment content at off. Unwritten blocks read as
// zeroes. len(dst) must be block aligned.
func (sf *SegmentFile) Read(cs *ChunkServer, off int64, dst []byte) error {
	if err := sf.checkRange(off, len(dst)); err != nil {
		return err
	}
	for b := 0; b < len(dst)/BlockSize; b++ {
		blockOff := off + int64(b)*BlockSize
		out := dst[b*BlockSize : (b+1)*BlockSize]
		br, ok := sf.blocks[blockOff]
		if !ok {
			for i := range out {
				out[i] = 0
			}
			continue
		}
		src, err := cs.ReadExtent(ExtentRef{Chunk: br.ref.Chunk, Offset: br.ref.Offset + int64(br.off), Len: BlockSize})
		if err != nil {
			return fmt.Errorf("storage: segment read at %d: %w", blockOff, err)
		}
		copy(out, src)
	}
	return nil
}

// rewriteChunk re-appends every live block of sf that currently lives in the
// given chunk, so the chunk can be freed. It returns the number of blocks
// moved.
func (sf *SegmentFile) rewriteChunk(cs *ChunkServer, id ChunkID) (int, error) {
	var moved int
	for blockOff, br := range sf.blocks {
		if br.ref.Chunk != id {
			continue
		}
		data, err := cs.ReadExtent(ExtentRef{Chunk: br.ref.Chunk, Offset: br.ref.Offset + int64(br.off), Len: BlockSize})
		if err != nil {
			return moved, fmt.Errorf("storage: GC read: %w", err)
		}
		newRef, err := cs.Append(data)
		if err != nil {
			return moved, fmt.Errorf("storage: GC append: %w", err)
		}
		sf.blocks[blockOff] = blockRef{ref: newRef, off: 0}
		moved++
	}
	return moved, nil
}
