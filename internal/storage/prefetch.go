package storage

// PrefetchConfig tunes the BlockServer's sequential-read prefetcher (§2.2:
// "the BS detects whether there exists continuous large block reads on a
// per-segment basis, and if so, the BS will load the subsequent data from
// the CS into the local memory").
type PrefetchConfig struct {
	// MinIOSize is the smallest read considered "large" for detection.
	MinIOSize int64
	// TriggerRuns is how many back-to-back sequential reads arm prefetching.
	TriggerRuns int
	// WindowBytes is how far ahead to load once armed.
	WindowBytes int64
}

// DefaultPrefetchConfig mirrors typical readahead tuning: 128 KiB "large"
// IOs, armed after 3 sequential hits, loading 4 MiB ahead.
func DefaultPrefetchConfig() PrefetchConfig {
	return PrefetchConfig{MinIOSize: 128 << 10, TriggerRuns: 3, WindowBytes: 4 << 20}
}

// segState is the per-segment detector and cache.
type segState struct {
	nextExpected int64 // offset the next sequential read would start at
	runs         int   // consecutive sequential large reads seen

	bufStart int64
	buf      []byte // prefetched bytes covering [bufStart, bufStart+len(buf))
}

// Prefetcher implements per-segment sequential-read detection and a single
// read-ahead window per segment.
type Prefetcher struct {
	cfg  PrefetchConfig
	segs map[SegKey]*segState
}

// NewPrefetcher creates a prefetcher with the given tuning.
func NewPrefetcher(cfg PrefetchConfig) *Prefetcher {
	return &Prefetcher{cfg: cfg, segs: make(map[SegKey]*segState)}
}

// Serve copies prefetched bytes into dst when the whole request lies inside
// the segment's read-ahead window, reporting whether it did.
func (p *Prefetcher) Serve(key SegKey, off int64, dst []byte) bool {
	st, ok := p.segs[key]
	if !ok || st.buf == nil {
		return false
	}
	end := off + int64(len(dst))
	if off < st.bufStart || end > st.bufStart+int64(len(st.buf)) {
		return false
	}
	copy(dst, st.buf[off-st.bufStart:])
	return true
}

// Observe feeds one read into the sequential detector. When the detector
// arms (TriggerRuns sequential large reads) it returns the window to load:
// the start offset and a positive byte count. Otherwise n is zero.
func (p *Prefetcher) Observe(key SegKey, off, size int64) (next int64, n int64) {
	st, ok := p.segs[key]
	if !ok {
		st = &segState{}
		p.segs[key] = st
	}
	if size >= p.cfg.MinIOSize && off == st.nextExpected {
		st.runs++
	} else if size >= p.cfg.MinIOSize {
		st.runs = 1
	} else {
		st.runs = 0
	}
	st.nextExpected = off + size
	if st.runs >= p.cfg.TriggerRuns {
		// Arm (or extend) the window right after this read, unless the
		// current buffer already covers it.
		start := off + size
		if st.buf != nil && start >= st.bufStart && start < st.bufStart+int64(len(st.buf)) {
			return 0, 0
		}
		return start, p.cfg.WindowBytes
	}
	return 0, 0
}

// Fill installs freshly loaded read-ahead bytes for the segment.
func (p *Prefetcher) Fill(key SegKey, start int64, data []byte) {
	st, ok := p.segs[key]
	if !ok {
		st = &segState{}
		p.segs[key] = st
	}
	st.bufStart = start
	st.buf = data
}

// Invalidate discards any cached window overlapping a written range, keeping
// the cache coherent with writes.
func (p *Prefetcher) Invalidate(key SegKey, off, size int64) {
	st, ok := p.segs[key]
	if !ok || st.buf == nil {
		return
	}
	if off < st.bufStart+int64(len(st.buf)) && off+size > st.bufStart {
		st.buf = nil
	}
}

// Drop forgets all state for a segment (used when it migrates away).
func (p *Prefetcher) Drop(key SegKey) {
	delete(p.segs, key)
}
