package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBlockServerPropertyRandomOpsWithGCAndMigration is the heavyweight
// substrate invariant: under any interleaving of writes, reads, garbage
// collections, and segment migrations across two BlockServers, every
// segment behaves exactly like a sparse byte array.
func TestBlockServerPropertyRandomOpsWithGCAndMigration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := []*BlockServer{
			NewBlockServer(NewChunkServer(32 * BlockSize)),
			NewBlockServer(NewChunkServer(32 * BlockSize)),
		}
		const nSegs = 3
		const blocksPerSeg = 16
		home := make([]int, nSegs) // which node hosts each segment
		shadow := make([][]byte, nSegs)
		for s := 0; s < nSegs; s++ {
			home[s] = rng.Intn(2)
			if err := nodes[home[s]].AddSegment(SegKey(s), blocksPerSeg*BlockSize); err != nil {
				return false
			}
			shadow[s] = make([]byte, blocksPerSeg*BlockSize)
		}
		for op := 0; op < 120; op++ {
			s := rng.Intn(nSegs)
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // write
				block := rng.Intn(blocksPerSeg)
				n := 1 + rng.Intn(2)
				if block+n > blocksPerSeg {
					n = blocksPerSeg - block
				}
				data := make([]byte, n*BlockSize)
				rng.Read(data)
				off := int64(block) * BlockSize
				if err := nodes[home[s]].Write(SegKey(s), off, data); err != nil {
					t.Logf("seed %d write: %v", seed, err)
					return false
				}
				copy(shadow[s][off:], data)
			case 4, 5, 6: // read + verify
				block := rng.Intn(blocksPerSeg)
				off := int64(block) * BlockSize
				got := make([]byte, BlockSize)
				if _, err := nodes[home[s]].Read(SegKey(s), off, got); err != nil {
					t.Logf("seed %d read: %v", seed, err)
					return false
				}
				if !bytes.Equal(got, shadow[s][off:off+BlockSize]) {
					t.Logf("seed %d: data mismatch seg %d block %d", seed, s, block)
					return false
				}
			case 7, 8: // garbage collect the segment's home node
				if _, err := nodes[home[s]].CollectGarbage(0.3); err != nil {
					t.Logf("seed %d gc: %v", seed, err)
					return false
				}
			case 9: // migrate to the other node
				dst := 1 - home[s]
				if err := nodes[home[s]].MigrateSegment(SegKey(s), nodes[dst]); err != nil {
					t.Logf("seed %d migrate: %v", seed, err)
					return false
				}
				home[s] = dst
			}
		}
		// Final full verification of every segment.
		for s := 0; s < nSegs; s++ {
			got := make([]byte, blocksPerSeg*BlockSize)
			if _, err := nodes[home[s]].Read(SegKey(s), 0, got); err != nil {
				t.Logf("seed %d final read: %v", seed, err)
				return false
			}
			if !bytes.Equal(got, shadow[s]) {
				t.Logf("seed %d: final mismatch seg %d", seed, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestGCReclaimsSpaceUnderChurn verifies the space accounting: sustained
// overwrites bound live bytes while GC keeps reclaiming chunks.
func TestGCReclaimsSpaceUnderChurn(t *testing.T) {
	cs := NewChunkServer(16 * BlockSize)
	bs := NewBlockServer(cs)
	if err := bs.AddSegment(1, 8*BlockSize); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, BlockSize)
	var reclaimed int
	for round := 0; round < 50; round++ {
		for b := 0; b < 8; b++ {
			fill(data, byte(round+b))
			if err := bs.Write(1, int64(b)*BlockSize, data); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		n, err := bs.CollectGarbage(0.3)
		if err != nil {
			t.Fatalf("gc round %d: %v", round, err)
		}
		reclaimed += n
	}
	if reclaimed < 10 {
		t.Fatalf("GC reclaimed only %d chunks under heavy churn", reclaimed)
	}
	st := cs.Stats()
	// Live bytes can never exceed the logical segment size.
	if st.LiveBytes > 8*BlockSize {
		t.Fatalf("live bytes %d exceed logical size", st.LiveBytes)
	}
	if st.FreedChunk == 0 {
		t.Fatal("no chunks freed")
	}
	// Data still correct.
	got := make([]byte, BlockSize)
	want := make([]byte, BlockSize)
	fill(want, byte(49+7))
	if _, err := bs.Read(1, 7*BlockSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted under churn")
	}
}

// TestMigrationChainAcrossManyNodes pushes one segment through a chain of
// nodes and verifies content at each hop.
func TestMigrationChainAcrossManyNodes(t *testing.T) {
	const hops = 6
	nodes := make([]*BlockServer, hops)
	for i := range nodes {
		nodes[i] = NewBlockServer(NewChunkServer(64 * BlockSize))
	}
	if err := nodes[0].AddSegment(1, 8*BlockSize); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 8*BlockSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := nodes[0].Write(1, 0, want); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < hops; i++ {
		if err := nodes[i-1].MigrateSegment(1, nodes[i]); err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
		got := make([]byte, 8*BlockSize)
		if _, err := nodes[i].Read(1, 0, got); err != nil {
			t.Fatalf("hop %d read: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("hop %d: content diverged", i)
		}
	}
	// Every earlier node must have relinquished the segment.
	for i := 0; i < hops-1; i++ {
		if nodes[i].HasSegment(1) {
			t.Fatalf("node %d still hosts the segment", i)
		}
	}
}

func ExampleBlockServer() {
	bs := NewBlockServer(NewChunkServer(1 << 20))
	_ = bs.AddSegment(1, 1<<20)
	data := bytes.Repeat([]byte{7}, BlockSize)
	_ = bs.Write(1, 0, data)
	out := make([]byte, BlockSize)
	_, _ = bs.Read(1, 0, out)
	fmt.Println(bytes.Equal(out, data))
	// Output: true
}
