package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func fill(b []byte, seed byte) {
	for i := range b {
		b[i] = seed + byte(i)
	}
}

func TestChunkServerAppendRead(t *testing.T) {
	cs := NewChunkServer(1 << 20)
	data := make([]byte, 4096)
	fill(data, 1)
	ref, err := cs.Append(data)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	got, err := cs.ReadExtent(ref)
	if err != nil {
		t.Fatalf("ReadExtent: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data differs from written data")
	}
}

func TestChunkServerRollsOver(t *testing.T) {
	cs := NewChunkServer(10_000)
	data := make([]byte, 4096)
	var refs []ExtentRef
	for i := 0; i < 5; i++ {
		ref, err := cs.Append(data)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		refs = append(refs, ref)
	}
	// 10k chunk holds two 4k extents: five appends need three chunks.
	if s := cs.Stats(); s.Chunks != 3 {
		t.Fatalf("chunks = %d, want 3", s.Chunks)
	}
	if refs[0].Chunk == refs[2].Chunk {
		t.Fatal("third extent should be in a new chunk")
	}
}

func TestChunkServerRejectsOversized(t *testing.T) {
	cs := NewChunkServer(1024)
	if _, err := cs.Append(make([]byte, 2048)); !errors.Is(err, ErrExtentTooLarge) {
		t.Fatalf("oversized append error = %v, want ErrExtentTooLarge", err)
	}
}

func TestChunkServerBadExtent(t *testing.T) {
	cs := NewChunkServer(1024)
	if _, err := cs.ReadExtent(ExtentRef{Chunk: 3}); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("bad chunk read error = %v", err)
	}
	ref, _ := cs.Append(make([]byte, 100))
	ref.Len = 500
	if _, err := cs.ReadExtent(ref); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("overlong extent read error = %v", err)
	}
}

func TestGarbageAccounting(t *testing.T) {
	cs := NewChunkServer(1 << 20)
	a, _ := cs.Append(make([]byte, 1000))
	cs.Append(make([]byte, 1000))
	if r := cs.GarbageRatio(a.Chunk); r != 0 {
		t.Fatalf("fresh garbage ratio = %v", r)
	}
	cs.MarkDead(a)
	if r := cs.GarbageRatio(a.Chunk); r != 0.5 {
		t.Fatalf("garbage ratio = %v, want 0.5", r)
	}
	s := cs.Stats()
	if s.LiveBytes != 1000 || s.DeadBytes != 1000 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFreeChunk(t *testing.T) {
	cs := NewChunkServer(1024)
	ref, _ := cs.Append(make([]byte, 512))
	cs.Free(ref.Chunk)
	if _, err := cs.ReadExtent(ref); !errors.Is(err, ErrChunkFreed) {
		t.Fatalf("read of freed chunk error = %v", err)
	}
	if s := cs.Stats(); s.FreedChunk != 1 {
		t.Fatalf("freed chunks = %d", s.FreedChunk)
	}
}

func TestSegmentFileReadWrite(t *testing.T) {
	cs := NewChunkServer(1 << 20)
	sf, err := NewSegmentFile(1 << 20)
	if err != nil {
		t.Fatalf("NewSegmentFile: %v", err)
	}
	data := make([]byte, 2*BlockSize)
	fill(data, 7)
	if err := sf.Write(cs, BlockSize, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, 2*BlockSize)
	if err := sf.Read(cs, BlockSize, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	// Unwritten block reads as zeroes.
	zero := make([]byte, BlockSize)
	if err := sf.Read(cs, 0, zero); err != nil {
		t.Fatalf("Read hole: %v", err)
	}
	for _, b := range zero {
		if b != 0 {
			t.Fatal("hole not zero-filled")
		}
	}
	if sf.WrittenBlocks() != 2 {
		t.Fatalf("WrittenBlocks = %d, want 2", sf.WrittenBlocks())
	}
}

func TestSegmentFileOverwriteMarksDead(t *testing.T) {
	cs := NewChunkServer(1 << 20)
	sf, _ := NewSegmentFile(1 << 20)
	data := make([]byte, BlockSize)
	fill(data, 1)
	sf.Write(cs, 0, data)
	fill(data, 2)
	sf.Write(cs, 0, data)
	s := cs.Stats()
	if s.DeadBytes != BlockSize {
		t.Fatalf("dead bytes = %d, want %d", s.DeadBytes, BlockSize)
	}
	got := make([]byte, BlockSize)
	sf.Read(cs, 0, got)
	if got[0] != 2 {
		t.Fatal("overwrite not visible")
	}
}

func TestSegmentFileRejectsBadIO(t *testing.T) {
	cs := NewChunkServer(1 << 20)
	sf, _ := NewSegmentFile(1 << 20)
	if err := sf.Write(cs, 1, make([]byte, BlockSize)); err == nil {
		t.Fatal("unaligned offset accepted")
	}
	if err := sf.Write(cs, 0, make([]byte, 100)); err == nil {
		t.Fatal("unaligned size accepted")
	}
	if err := sf.Write(cs, 1<<20, make([]byte, BlockSize)); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if err := sf.Read(cs, -4096, make([]byte, BlockSize)); err == nil {
		t.Fatal("negative read accepted")
	}
	if _, err := NewSegmentFile(100); err == nil {
		t.Fatal("unaligned segment size accepted")
	}
	if _, err := NewSegmentFile(0); err == nil {
		t.Fatal("zero segment size accepted")
	}
}

func TestBlockServerBasics(t *testing.T) {
	bs := NewBlockServer(NewChunkServer(1 << 20))
	if err := bs.AddSegment(1, 1<<20); err != nil {
		t.Fatalf("AddSegment: %v", err)
	}
	if err := bs.AddSegment(1, 1<<20); err == nil {
		t.Fatal("duplicate AddSegment accepted")
	}
	if !bs.HasSegment(1) || bs.HasSegment(2) {
		t.Fatal("HasSegment wrong")
	}
	data := make([]byte, BlockSize)
	fill(data, 3)
	if err := bs.Write(1, 0, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, BlockSize)
	if _, err := bs.Read(1, 0, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if err := bs.Write(9, 0, data); err == nil {
		t.Fatal("write to unhosted segment accepted")
	}
	if _, err := bs.Read(9, 0, got); err == nil {
		t.Fatal("read from unhosted segment accepted")
	}
	r, w, _ := bs.Traffic()
	if r != BlockSize || w != BlockSize {
		t.Fatalf("traffic = %d/%d", r, w)
	}
}

func TestBlockServerGC(t *testing.T) {
	cs := NewChunkServer(8 * BlockSize)
	bs := NewBlockServer(cs)
	bs.AddSegment(1, 1<<20)
	data := make([]byte, BlockSize)
	// Overwrite the same two blocks many times to build garbage across
	// sealed chunks.
	for i := 0; i < 32; i++ {
		fill(data, byte(i))
		if err := bs.Write(1, 0, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := bs.Write(1, BlockSize, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	freed, err := bs.CollectGarbage(0.5)
	if err != nil {
		t.Fatalf("CollectGarbage: %v", err)
	}
	if freed == 0 {
		t.Fatal("GC reclaimed nothing despite heavy overwrites")
	}
	// Data must survive GC.
	got := make([]byte, BlockSize)
	if _, err := bs.Read(1, 0, got); err != nil {
		t.Fatalf("post-GC read: %v", err)
	}
	want := make([]byte, BlockSize)
	fill(want, 31)
	if !bytes.Equal(got, want) {
		t.Fatal("GC corrupted data")
	}
}

func TestMigrateSegment(t *testing.T) {
	src := NewBlockServer(NewChunkServer(1 << 20))
	dst := NewBlockServer(NewChunkServer(1 << 20))
	src.AddSegment(5, 1<<20)
	data := make([]byte, 2*BlockSize)
	fill(data, 9)
	src.Write(5, 4*BlockSize, data)

	if err := src.MigrateSegment(5, dst); err != nil {
		t.Fatalf("MigrateSegment: %v", err)
	}
	if src.HasSegment(5) {
		t.Fatal("segment still on source")
	}
	got := make([]byte, 2*BlockSize)
	if _, err := dst.Read(5, 4*BlockSize, got); err != nil {
		t.Fatalf("read on destination: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("migrated data mismatch")
	}
	if err := src.MigrateSegment(5, dst); err == nil {
		t.Fatal("migrating absent segment accepted")
	}
	if err := dst.MigrateSegment(5, dst); err == nil {
		t.Fatal("self-migration accepted")
	}
}

func TestPrefetcherServesSequentialReads(t *testing.T) {
	bs := NewBlockServer(NewChunkServer(32 << 20))
	bs.AddSegment(1, 32<<20)
	// Write 16 MiB of patterned data.
	chunk := make([]byte, 256<<10)
	for off := int64(0); off < 16<<20; off += int64(len(chunk)) {
		fill(chunk, byte(off>>18))
		if err := bs.Write(1, off, chunk); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	// Stream sequential 256 KiB reads; after the trigger, reads should hit
	// the prefetch window.
	dst := make([]byte, 256<<10)
	var hits int
	for off := int64(0); off < 8<<20; off += int64(len(dst)) {
		hit, err := bs.Read(1, off, dst)
		if err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		want := make([]byte, len(dst))
		fill(want, byte(off>>18))
		if !bytes.Equal(dst, want) {
			t.Fatalf("data mismatch at %d (hit=%v)", off, hit)
		}
		if hit {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("prefetcher never served a sequential stream")
	}
	_, _, hitBytes := bs.Traffic()
	if hitBytes == 0 {
		t.Fatal("prefetch hit bytes not accounted")
	}
}

func TestPrefetcherInvalidatedByWrite(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{MinIOSize: 4096, TriggerRuns: 1, WindowBytes: 8192})
	p.Fill(1, 0, []byte{1, 2, 3, 4})
	dst := make([]byte, 2)
	if !p.Serve(1, 1, dst) {
		t.Fatal("Serve should hit inside window")
	}
	p.Invalidate(1, 2, 2)
	if p.Serve(1, 1, dst) {
		t.Fatal("Serve hit after overlapping write")
	}
	// Non-overlapping invalidation keeps the window.
	p.Fill(1, 0, []byte{1, 2, 3, 4})
	p.Invalidate(1, 100, 4)
	if !p.Serve(1, 0, dst) {
		t.Fatal("non-overlapping write dropped window")
	}
	p.Drop(1)
	if p.Serve(1, 0, dst) {
		t.Fatal("Serve hit after Drop")
	}
}

func TestPrefetcherDetectorResets(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{MinIOSize: 4096, TriggerRuns: 2, WindowBytes: 8192})
	if _, n := p.Observe(1, 0, 4096); n != 0 {
		t.Fatal("armed after one read")
	}
	if next, n := p.Observe(1, 4096, 4096); n == 0 || next != 8192 {
		t.Fatalf("second sequential read should arm: next=%d n=%d", next, n)
	}
	// Small read resets the run.
	p.Observe(1, 8192, 512)
	if _, n := p.Observe(1, 8704, 4096); n != 0 {
		t.Fatal("armed immediately after reset")
	}
}

func TestSegmentFilePropertyRandomOps(t *testing.T) {
	// Property: a segment file behaves like a sparse byte array under
	// random block-aligned writes and reads.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := NewChunkServer(64 * BlockSize)
		const nBlocks = 32
		sf, err := NewSegmentFile(nBlocks * BlockSize)
		if err != nil {
			return false
		}
		shadow := make([]byte, nBlocks*BlockSize)
		for op := 0; op < 60; op++ {
			block := rng.Intn(nBlocks)
			n := 1 + rng.Intn(3)
			if block+n > nBlocks {
				n = nBlocks - block
			}
			off := int64(block) * BlockSize
			if rng.Intn(2) == 0 {
				data := make([]byte, n*BlockSize)
				rng.Read(data)
				if err := sf.Write(cs, off, data); err != nil {
					return false
				}
				copy(shadow[off:], data)
			} else {
				got := make([]byte, n*BlockSize)
				if err := sf.Read(cs, off, got); err != nil {
					return false
				}
				if !bytes.Equal(got, shadow[off:off+int64(n*BlockSize)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewChunkServerPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChunkServer(0) should panic")
		}
	}()
	NewChunkServer(0)
}
