// Package testclock provides the injectable fake clock shared by the fabric
// and consensus test suites. The production code paths take a `now func()
// time.Time` (or stamp times into replicated log entries); tests hand them
// clock.Now and advance time explicitly, so liveness timeouts, speculation
// windows, and reaping decisions become deterministic instead of racing the
// wall clock.
package testclock

import (
	"sync"
	"time"
)

// Clock is a manually advanced clock. The zero value is not useful; construct
// one with At or AtUnix. All methods are safe for concurrent use — tests
// routinely read Now from the goroutine under test while the test body calls
// Advance.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// At returns a Clock frozen at t.
func At(t time.Time) *Clock {
	return &Clock{now: t}
}

// AtUnix returns a Clock frozen at the given Unix second. Most fabric tests
// only care about relative durations, so an arbitrary small epoch keeps the
// fixtures readable.
func AtUnix(sec int64) *Clock {
	return At(time.Unix(sec, 0))
}

// Now returns the current fake time. Pass the method value (clock.Now)
// wherever production code wants a `func() time.Time`.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative d is allowed (the clock
// moves backward); tests use that to probe non-monotonic-time hardening.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Set jumps the clock to an absolute time.
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}
