package testclock

import (
	"sync"
	"testing"
	"time"
)

func TestClockAdvanceAndSet(t *testing.T) {
	c := AtUnix(1000)
	if got := c.Now(); !got.Equal(time.Unix(1000, 0)) {
		t.Fatalf("Now() = %v, want unix 1000", got)
	}
	c.Advance(90 * time.Second)
	if got := c.Now(); !got.Equal(time.Unix(1090, 0)) {
		t.Fatalf("after Advance, Now() = %v, want unix 1090", got)
	}
	c.Advance(-30 * time.Second)
	if got := c.Now(); !got.Equal(time.Unix(1060, 0)) {
		t.Fatalf("after negative Advance, Now() = %v, want unix 1060", got)
	}
	c.Set(time.Unix(5, 0))
	if got := c.Now(); !got.Equal(time.Unix(5, 0)) {
		t.Fatalf("after Set, Now() = %v, want unix 5", got)
	}
}

// TestClockConcurrent drives Now and Advance from racing goroutines; the
// race detector is the assertion.
func TestClockConcurrent(t *testing.T) {
	c := AtUnix(0)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(time.Millisecond)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); !got.Equal(time.Unix(0, 0).Add(400 * time.Millisecond)) {
		t.Fatalf("Now() = %v, want +400ms", got)
	}
}
