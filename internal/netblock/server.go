package netblock

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ebslab/internal/storage"
)

// Handler executes one decoded request and produces its response. The
// server calls handlers from one goroutine per connection, so a handler
// shared across connections must be safe for concurrent use. Two handlers
// exist today: the BlockServer data plane (NewServer) and the fabric
// coordinator control plane (internal/fabric).
type Handler interface {
	Handle(req *Request) *Response
}

// Server exposes one Handler over a net.Listener. Each connection gets a
// reader goroutine; responses may be written out of order thanks to request
// IDs, so slow requests do not head-of-line-block other connections.
type Server struct {
	h Handler

	wg       sync.WaitGroup
	listener net.Listener

	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	shutdown bool // set under connMu; new conns are refused once true

	closeOnce sync.Once
	closed    chan struct{}

	hookMu sync.Mutex
	hook   FaultHook

	faults atomic.Int64

	requests  atomic.Int64
	errorsOut atomic.Int64
}

// Fault is a server-side injected failure mode.
type Fault uint8

// Injectable faults. Each is applied in serveConn, after decode and before
// or instead of the normal response write, so in-process (net.Pipe) and TCP
// connections see identical behaviour.
const (
	// FaultNone serves the request normally (a DelayUS may still apply).
	FaultNone Fault = iota
	// FaultReset closes the connection before executing the request.
	FaultReset
	// FaultDrop executes the request but never writes the response.
	FaultDrop
	// FaultError answers StatusError without executing the request.
	FaultError
	// FaultTruncate executes, writes a partial response frame, then resets.
	FaultTruncate
	// FaultGarbage executes, writes a garbage frame, then resets.
	FaultGarbage
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultReset:
		return "reset"
	case FaultDrop:
		return "drop"
	case FaultError:
		return "error"
	case FaultTruncate:
		return "truncate"
	case FaultGarbage:
		return "garbage"
	}
	return fmt.Sprintf("Fault(%d)", uint8(f))
}

// FaultDecision is a hook's verdict for one request. DelayUS, when
// positive, stalls the connection's pipeline before the fault (or normal
// service) applies.
type FaultDecision struct {
	Fault   Fault
	DelayUS int64
}

// FaultHook decides, per decoded request, whether and how to misbehave.
// Hooks must be safe for concurrent use (one serveConn goroutine per
// connection calls them).
type FaultHook func(req *Request) FaultDecision

// SetFaultHook installs (or, with nil, removes) the fault hook.
func (s *Server) SetFaultHook(h FaultHook) {
	s.hookMu.Lock()
	s.hook = h
	s.hookMu.Unlock()
}

func (s *Server) faultHook() FaultHook {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	return s.hook
}

// FaultsInjected returns how many requests a fault was applied to (delays
// included).
func (s *Server) FaultsInjected() int64 { return s.faults.Load() }

// NewServer wraps a BlockServer in the block-IO data-plane handler.
func NewServer(bs *storage.BlockServer) *Server {
	return NewHandlerServer(&blockHandler{bs: bs})
}

// NewHandlerServer serves an arbitrary Handler (the fabric control plane
// mounts its coordinator this way).
func NewHandlerServer(h Handler) *Server {
	return &Server{h: h, closed: make(chan struct{}), conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener is closed. It returns the
// listener's final error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	if s.shutdown {
		s.connMu.Unlock()
		l.Close()
		return nil
	}
	s.listener = l
	s.connMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		// Registration and the WaitGroup increment happen atomically with
		// the shutdown check: a connection accepted while Close is running
		// either lands in conns before Close sweeps them (and is closed and
		// awaited there), or observes shutdown here and is refused. Without
		// this, a conn accepted concurrently with Close was never closed and
		// its handler goroutine leaked past Close's wait.
		s.connMu.Lock()
		if s.shutdown {
			s.connMu.Unlock()
			conn.Close()
			continue // the listener's own Close ends the accept loop
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.connMu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// Close stops accepting, closes active connections, and waits for the
// connection goroutines to drain.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.connMu.Lock()
		s.shutdown = true
		if s.listener != nil {
			s.listener.Close()
		}
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
}

// Requests returns how many requests the server has executed.
func (s *Server) Requests() int64 { return s.requests.Load() }

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var writeMu sync.Mutex
	for {
		req, err := ReadRequest(conn)
		if err != nil {
			return // EOF or broken pipe ends the connection
		}
		var d FaultDecision
		if h := s.faultHook(); h != nil {
			d = h(req)
		}
		if d.Fault != FaultNone || d.DelayUS > 0 {
			s.faults.Add(1)
		}
		if d.DelayUS > 0 {
			time.Sleep(time.Duration(d.DelayUS) * time.Microsecond)
		}
		switch d.Fault {
		case FaultReset:
			return // connection reset before execution
		case FaultError:
			writeMu.Lock()
			err = WriteResponse(conn, &Response{
				ID: req.ID, Status: StatusError, Payload: []byte("injected fault"),
			})
			writeMu.Unlock()
			if err != nil {
				return
			}
			continue
		}
		resp := s.execute(req)
		switch d.Fault {
		case FaultDrop:
			continue // executed, but the response vanishes
		case FaultTruncate:
			var buf bytes.Buffer
			if WriteResponse(&buf, resp) == nil && buf.Len() > 1 {
				conn.Write(buf.Bytes()[:buf.Len()/2])
			}
			return
		case FaultGarbage:
			conn.Write(bytes.Repeat([]byte{0xA5}, respHeaderSize+8))
			return
		}
		writeMu.Lock()
		err = WriteResponse(conn, resp)
		writeMu.Unlock()
		if err != nil {
			return
		}
	}
}

// execute counts and dispatches one request to the handler.
func (s *Server) execute(req *Request) *Response {
	s.requests.Add(1)
	resp := s.h.Handle(req)
	if resp.Status != StatusOK {
		s.errorsOut.Add(1)
	}
	return resp
}

// blockHandler is the block-IO data plane: requests are executed under a
// mutex (the BlockServer is single-writer).
type blockHandler struct {
	mu sync.Mutex
	bs *storage.BlockServer
}

// Handle runs one request against the BlockServer.
func (s *blockHandler) Handle(req *Request) *Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := &Response{ID: req.ID, Status: StatusOK}
	fail := func(err error) *Response {
		resp.Status = StatusError
		resp.Payload = []byte(err.Error())
		return resp
	}
	switch req.Op {
	case OpRead:
		if req.Length > maxPayload {
			return fail(ErrPayloadTooLarge)
		}
		buf := make([]byte, req.Length)
		if _, err := s.bs.Read(storage.SegKey(req.Segment), req.Offset, buf); err != nil {
			return fail(err)
		}
		resp.Payload = buf
	case OpWrite:
		if err := s.bs.Write(storage.SegKey(req.Segment), req.Offset, req.Payload); err != nil {
			return fail(err)
		}
	case OpAddSegment:
		size := int64(req.Length) * storage.BlockSize
		if err := s.bs.AddSegment(storage.SegKey(req.Segment), size); err != nil {
			return fail(err)
		}
	case OpHasSegment:
		if !s.bs.HasSegment(storage.SegKey(req.Segment)) {
			return fail(errors.New("segment not hosted"))
		}
	case OpStats:
		r, w, p := s.bs.Traffic()
		buf := make([]byte, 24)
		binary.LittleEndian.PutUint64(buf[0:], uint64(r))
		binary.LittleEndian.PutUint64(buf[8:], uint64(w))
		binary.LittleEndian.PutUint64(buf[16:], uint64(p))
		resp.Payload = buf
	default:
		return fail(fmt.Errorf("netblock: unknown op %d", req.Op))
	}
	return resp
}
