package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"ebslab/internal/storage"
)

// Server exposes one storage.BlockServer over a net.Listener. Each
// connection gets a reader goroutine; requests are executed under a mutex
// (the BlockServer is single-writer) and responses may be written out of
// order thanks to request IDs, so slow reads do not head-of-line-block
// writes from other connections.
type Server struct {
	bs *storage.BlockServer

	mu       sync.Mutex // serializes BlockServer access
	wg       sync.WaitGroup
	listener net.Listener

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	closeOnce sync.Once
	closed    chan struct{}

	// Stats (atomic under mu for simplicity).
	requests  int64
	errorsOut int64
}

// NewServer wraps a BlockServer.
func NewServer(bs *storage.BlockServer) *Server {
	return &Server{bs: bs, closed: make(chan struct{}), conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener is closed. It returns the
// listener's final error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.listener = l
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// Close stops accepting, closes active connections, and waits for the
// connection goroutines to drain.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.listener != nil {
			s.listener.Close()
		}
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
}

// Requests returns how many requests the server has executed.
func (s *Server) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var writeMu sync.Mutex
	for {
		req, err := ReadRequest(conn)
		if err != nil {
			return // EOF or broken pipe ends the connection
		}
		resp := s.execute(req)
		writeMu.Lock()
		err = WriteResponse(conn, resp)
		writeMu.Unlock()
		if err != nil {
			return
		}
	}
}

// execute runs one request against the BlockServer.
func (s *Server) execute(req *Request) *Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	resp := &Response{ID: req.ID, Status: StatusOK}
	fail := func(err error) *Response {
		s.errorsOut++
		resp.Status = StatusError
		resp.Payload = []byte(err.Error())
		return resp
	}
	switch req.Op {
	case OpRead:
		if req.Length > maxPayload {
			return fail(ErrPayloadTooLarge)
		}
		buf := make([]byte, req.Length)
		if _, err := s.bs.Read(storage.SegKey(req.Segment), req.Offset, buf); err != nil {
			return fail(err)
		}
		resp.Payload = buf
	case OpWrite:
		if err := s.bs.Write(storage.SegKey(req.Segment), req.Offset, req.Payload); err != nil {
			return fail(err)
		}
	case OpAddSegment:
		size := int64(req.Length) * storage.BlockSize
		if err := s.bs.AddSegment(storage.SegKey(req.Segment), size); err != nil {
			return fail(err)
		}
	case OpHasSegment:
		if !s.bs.HasSegment(storage.SegKey(req.Segment)) {
			return fail(errors.New("segment not hosted"))
		}
	case OpStats:
		r, w, p := s.bs.Traffic()
		buf := make([]byte, 24)
		binary.LittleEndian.PutUint64(buf[0:], uint64(r))
		binary.LittleEndian.PutUint64(buf[8:], uint64(w))
		binary.LittleEndian.PutUint64(buf[16:], uint64(p))
		resp.Payload = buf
	default:
		return fail(fmt.Errorf("netblock: unknown op %d", req.Op))
	}
	return resp
}
