package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ebslab/internal/storage"
)

// Client-side errors.
var (
	// ErrTimeout reports a call that exceeded its per-call deadline.
	ErrTimeout = errors.New("netblock: call deadline exceeded")
	// ErrClosed reports use of a client after Close.
	ErrClosed = errors.New("netblock: client closed")

	errMidCall = errors.New("netblock: connection closed mid-call")
	errNoConn  = errors.New("netblock: connection down")
)

// Config tunes the client's resilience. The zero value is the legacy
// behaviour: no deadline, no retries (Dial still redials a dead connection
// on the next call, since it knows the address).
type Config struct {
	// Timeout is the per-call deadline (0 = wait forever). A timed-out call
	// abandons its connection: a peer that swallows one response cannot be
	// trusted with the rest of the pipeline.
	Timeout time.Duration
	// MaxRetries is how many extra transport-level attempts a call makes
	// after a transport failure (remote StatusError responses are final and
	// never retried). Note retried writes are at-least-once: the fault may
	// have struck after execution.
	MaxRetries int
	// BackoffBase is the first retry delay (default 1ms); attempt n waits
	// about BackoffBase << n, jittered into [50%, 100%].
	BackoffBase time.Duration
	// BackoffCap bounds the exponential backoff (default 250ms).
	BackoffCap time.Duration
	// Seed drives the deterministic backoff jitter: a fixed (Seed, call ID,
	// attempt) always produces the same delay.
	Seed int64
}

// Client is a pipelining RPC client: many goroutines (worker threads) can
// issue requests concurrently over one connection; a demux goroutine routes
// responses back by request ID. When the connection dies, every in-flight
// call fails immediately with a real error — and if the client knows how to
// redial (Dial/DialConfig), the next attempt transparently reconnects.
type Client struct {
	cfg  Config
	dial func() (net.Conn, error) // nil: NewClient over a fixed conn

	nextID  atomic.Uint64
	retries atomic.Int64

	mu     sync.Mutex
	cs     *connState
	gen    int // bumped on every redial, to pair drop() with the conn it saw
	closed bool
}

// connState is one connection's demux state. A client replaces its
// connState wholesale on redial; abandoned states drain and die.
type connState struct {
	conn    net.Conn
	writeMu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]chan *Response
	readErr error
	done    chan struct{}
}

// Dial connects to a netblock server with the legacy zero Config.
func Dial(network, addr string) (*Client, error) {
	return DialConfig(network, addr, Config{})
}

// DialConfig connects to a netblock server with explicit resilience
// settings. The returned client redials automatically after connection
// loss.
func DialConfig(network, addr string, cfg Config) (*Client, error) {
	c := &Client{
		cfg:  cfg,
		dial: func() (net.Conn, error) { return net.Dial(network, addr) },
	}
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("netblock: dial: %w", err)
	}
	c.cs = newConnState(conn)
	c.gen = 1
	return c, nil
}

// NewClient wraps an established connection (handy for tests over
// net.Pipe). Without a dialer there is no redial: once the connection dies,
// calls fail.
func NewClient(conn net.Conn) *Client {
	return NewClientConfig(conn, Config{})
}

// NewClientConfig is NewClient with explicit resilience settings.
func NewClientConfig(conn net.Conn, cfg Config) *Client {
	return &Client{cfg: cfg, cs: newConnState(conn), gen: 1}
}

func newConnState(conn net.Conn) *connState {
	cs := &connState{
		conn:    conn,
		pending: make(map[uint64]chan *Response),
		done:    make(chan struct{}),
	}
	go cs.readLoop()
	return cs
}

// Close tears down the connection; in-flight calls fail and later calls
// return ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	cs := c.cs
	c.cs = nil
	c.mu.Unlock()
	if cs == nil {
		return nil
	}
	err := cs.conn.Close()
	<-cs.done
	return err
}

// Retries returns how many transport-level retries the client has made.
func (c *Client) Retries() int64 { return c.retries.Load() }

// RemoteAddr returns the current connection's remote address, or nil when
// the client has no live connection.
func (c *Client) RemoteAddr() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cs == nil {
		return nil
	}
	return c.cs.conn.RemoteAddr()
}

func (cs *connState) readLoop() {
	defer close(cs.done)
	for {
		resp, err := ReadResponse(cs.conn)
		cs.mu.Lock()
		if err != nil {
			cs.readErr = err
			for id, ch := range cs.pending {
				close(ch)
				delete(cs.pending, id)
			}
			cs.mu.Unlock()
			return
		}
		ch, ok := cs.pending[resp.ID]
		if ok {
			delete(cs.pending, resp.ID)
		}
		cs.mu.Unlock()
		if ok {
			ch <- resp // buffered: never blocks, even if the caller timed out
		}
	}
}

// register adds a pending slot for id, failing if the connection is
// already dead.
func (cs *connState) register(id uint64) (chan *Response, error) {
	ch := make(chan *Response, 1)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.readErr != nil {
		return nil, cs.readErr
	}
	cs.pending[id] = ch
	return ch, nil
}

func (cs *connState) forget(id uint64) {
	cs.mu.Lock()
	delete(cs.pending, id)
	cs.mu.Unlock()
}

// state returns the live connection, redialing if the previous one was
// dropped and the client knows how.
func (c *Client) state() (*connState, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, ErrClosed
	}
	if c.cs == nil {
		if c.dial == nil {
			return nil, 0, errNoConn
		}
		conn, err := c.dial()
		if err != nil {
			return nil, 0, fmt.Errorf("netblock: redial: %w", err)
		}
		c.cs = newConnState(conn)
		c.gen++
	}
	return c.cs, c.gen, nil
}

// drop discards the connection a failed attempt used, unless a concurrent
// caller already replaced it.
func (c *Client) drop(cs *connState, gen int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen == gen && c.cs == cs {
		c.cs.conn.Close()
		c.cs = nil
	}
}

// attempt performs one wire exchange of req (already carrying its call ID).
func (c *Client) attempt(req *Request) (*Response, error) {
	cs, gen, err := c.state()
	if err != nil {
		return nil, err
	}
	ch, err := cs.register(req.ID)
	if err != nil {
		c.drop(cs, gen)
		return nil, fmt.Errorf("netblock: connection down: %w", err)
	}
	cs.writeMu.Lock()
	werr := WriteRequest(cs.conn, req)
	cs.writeMu.Unlock()
	if werr != nil {
		cs.forget(req.ID)
		c.drop(cs, gen) // frame may be half-written; the conn is desynced
		return nil, werr
	}
	var timeout <-chan time.Time
	if c.cfg.Timeout > 0 {
		tm := time.NewTimer(c.cfg.Timeout)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.drop(cs, gen)
			return nil, errMidCall
		}
		return resp, nil
	case <-timeout:
		cs.forget(req.ID)
		c.drop(cs, gen)
		return nil, fmt.Errorf("netblock: %s call: %w", req.Op, ErrTimeout)
	}
}

// call sends one request and waits for its response, retrying transport
// failures up to Config.MaxRetries times with capped exponential backoff
// and deterministic jitter.
func (c *Client) call(req *Request) (*Response, error) {
	if err := req.validate(); err != nil {
		return nil, err // unsendable: fail without touching the connection
	}
	req.ID = c.nextID.Add(1)
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.attempt(req)
		if err == nil {
			return resp, resp.Err()
		}
		lastErr = err
		if attempt >= c.cfg.MaxRetries || errors.Is(err, ErrClosed) {
			return nil, lastErr
		}
		c.retries.Add(1)
		time.Sleep(c.backoff(req.ID, attempt))
	}
}

// backoff computes the delay before retry #attempt of call id:
// BackoffBase << attempt, capped at BackoffCap, jittered into [50%, 100%]
// by a splitmix64 stream over (Seed, id, attempt) — fully deterministic.
func (c *Client) backoff(id uint64, attempt int) time.Duration {
	base := c.cfg.BackoffBase
	if base <= 0 {
		base = time.Millisecond
	}
	cap := c.cfg.BackoffCap
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	d := base
	if attempt < 62 {
		d = base << uint(attempt)
	}
	if d <= 0 || d > cap {
		d = cap
	}
	h := uint64(c.cfg.Seed)
	h += 0x9e3779b97f4a7c15 * (id + 1)
	h ^= uint64(attempt) << 32
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	frac := 0.5 + 0.5*float64(h>>11)/(1<<53)
	return time.Duration(float64(d) * frac)
}

// Call performs one generic RPC: an opaque payload under the given op,
// answered by the peer handler's opaque response payload. The fabric
// control plane (JoinFleet, AssignShard, ShardResult, Heartbeat, Drain)
// rides on this; the typed block-IO methods below remain the data plane.
func (c *Client) Call(op OpCode, payload []byte) ([]byte, error) {
	resp, err := c.call(&Request{Op: op, Length: uint32(len(payload)), Payload: payload})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// AddSegment creates a segment of sizeBlocks 4 KiB blocks on the server.
func (c *Client) AddSegment(seg storage.SegKey, sizeBlocks int) error {
	_, err := c.call(&Request{Op: OpAddSegment, Segment: int32(seg), Length: uint32(sizeBlocks)})
	return err
}

// HasSegment reports whether the server hosts seg.
func (c *Client) HasSegment(seg storage.SegKey) bool {
	_, err := c.call(&Request{Op: OpHasSegment, Segment: int32(seg)})
	return err == nil
}

// Write stores block-aligned data at the segment-relative offset.
func (c *Client) Write(seg storage.SegKey, off int64, data []byte) error {
	_, err := c.call(&Request{
		Op: OpWrite, Segment: int32(seg), Offset: off,
		Length: uint32(len(data)), Payload: data,
	})
	return err
}

// Read returns n block-aligned bytes from the segment-relative offset.
func (c *Client) Read(seg storage.SegKey, off int64, n int) ([]byte, error) {
	resp, err := c.call(&Request{Op: OpRead, Segment: int32(seg), Offset: off, Length: uint32(n)})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Stats fetches the server's cumulative traffic counters.
func (c *Client) Stats() (readBytes, writeBytes, prefetchHitBytes int64, err error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return 0, 0, 0, err
	}
	if len(resp.Payload) != 24 {
		return 0, 0, 0, errors.New("netblock: malformed stats payload")
	}
	return int64(binary.LittleEndian.Uint64(resp.Payload[0:])),
		int64(binary.LittleEndian.Uint64(resp.Payload[8:])),
		int64(binary.LittleEndian.Uint64(resp.Payload[16:])), nil
}
