package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"ebslab/internal/storage"
)

// Client is a pipelining RPC client: many goroutines (worker threads) can
// issue requests concurrently over one connection; a demux goroutine routes
// responses back by request ID.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes request frames

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Response
	readErr error
	done    chan struct{}
}

// Dial connects to a netblock server.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("netblock: dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (handy for tests over
// net.Pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan *Response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		resp, err := ReadResponse(c.conn)
		c.mu.Lock()
		if err != nil {
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// call sends one request and waits for its response.
func (c *Client) call(req *Request) (*Response, error) {
	ch := make(chan *Response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("netblock: connection down: %w", err)
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := WriteRequest(c.conn, req)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, errors.New("netblock: connection closed mid-call")
	}
	return resp, resp.Err()
}

// AddSegment creates a segment of sizeBlocks 4 KiB blocks on the server.
func (c *Client) AddSegment(seg storage.SegKey, sizeBlocks int) error {
	_, err := c.call(&Request{Op: OpAddSegment, Segment: int32(seg), Length: uint32(sizeBlocks)})
	return err
}

// HasSegment reports whether the server hosts seg.
func (c *Client) HasSegment(seg storage.SegKey) bool {
	_, err := c.call(&Request{Op: OpHasSegment, Segment: int32(seg)})
	return err == nil
}

// Write stores block-aligned data at the segment-relative offset.
func (c *Client) Write(seg storage.SegKey, off int64, data []byte) error {
	_, err := c.call(&Request{
		Op: OpWrite, Segment: int32(seg), Offset: off,
		Length: uint32(len(data)), Payload: data,
	})
	return err
}

// Read returns n block-aligned bytes from the segment-relative offset.
func (c *Client) Read(seg storage.SegKey, off int64, n int) ([]byte, error) {
	resp, err := c.call(&Request{Op: OpRead, Segment: int32(seg), Offset: off, Length: uint32(n)})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Stats fetches the server's cumulative traffic counters.
func (c *Client) Stats() (readBytes, writeBytes, prefetchHitBytes int64, err error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return 0, 0, 0, err
	}
	if len(resp.Payload) != 24 {
		return 0, 0, 0, errors.New("netblock: malformed stats payload")
	}
	return int64(binary.LittleEndian.Uint64(resp.Payload[0:])),
		int64(binary.LittleEndian.Uint64(resp.Payload[8:])),
		int64(binary.LittleEndian.Uint64(resp.Payload[16:])), nil
}
