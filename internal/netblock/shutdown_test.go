package netblock

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ebslab/internal/storage"
)

// TestCloseWaitsForInflightHandler pins the shutdown contract: Close must
// not return while a connection goroutine is still executing a request.
// The fault hook parks the in-flight handler on a channel; Close may only
// complete after the handler is released.
func TestCloseWaitsForInflightHandler(t *testing.T) {
	bs := storage.NewBlockServer(storage.NewChunkServer(1 << 20))
	srv := NewServer(bs)
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	srv.SetFaultHook(func(req *Request) FaultDecision {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
		return FaultDecision{}
	})

	cc, sc := net.Pipe()
	defer cc.Close()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(&stubListener{conns: oneConn(sc)}) }()

	cl := NewClient(cc)
	go cl.AddSegment(1, 4) // parks inside the hook; the response may never land

	<-entered
	closeDone := make(chan struct{})
	go func() {
		srv.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a handler was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Close never returned after the handler finished")
	}
	// The stub listener drains on its own, so Serve may report net.ErrClosed
	// before Close latches; both endings are clean.
	if err := <-serveDone; err != nil && !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Serve returned %v after Close", err)
	}
	cl.Close()
}

// TestAcceptCloseRace is the regression test for the leak where a
// connection accepted concurrently with Close was never closed and its
// handler goroutine survived Close's wait. The stub listener hands the
// server a connection only after Close has fully completed; the server must
// refuse and close it rather than serving it.
func TestAcceptCloseRace(t *testing.T) {
	bs := storage.NewBlockServer(storage.NewChunkServer(1 << 20))
	srv := NewServer(bs)

	l := &stubListener{conns: make(chan net.Conn, 1), accepting: make(chan struct{})}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	<-l.accepting // Serve is parked inside Accept
	srv.Close()   // no conns yet: returns immediately, shutdown is latched

	cc, sc := net.Pipe()
	defer cc.Close()
	l.conns <- sc // a conn the accept loop races past Close
	close(l.conns)

	// The server must close the late conn: the peer sees EOF, not a hang.
	cc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := cc.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("late-accepted conn read = %v, want EOF (conn closed by server)", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve never returned after Close and listener exhaustion")
	}
	if got := srv.Requests(); got != 0 {
		t.Fatalf("refused conn executed %d requests", got)
	}
}

// stubListener serves connections from a channel; Accept returns
// net.ErrClosed when the channel is exhausted. Close is a no-op so tests
// control exactly when the accept loop ends. The optional accepting channel
// is closed when Accept is first entered.
type stubListener struct {
	conns      chan net.Conn
	accepting  chan struct{}
	acceptOnce sync.Once
}

func (l *stubListener) Accept() (net.Conn, error) {
	if l.accepting != nil {
		l.acceptOnce.Do(func() { close(l.accepting) })
	}
	c, ok := <-l.conns
	if !ok {
		return nil, net.ErrClosed
	}
	return c, nil
}

func (l *stubListener) Close() error   { return nil }
func (l *stubListener) Addr() net.Addr { return stubAddr{} }

type stubAddr struct{}

func (stubAddr) Network() string { return "stub" }
func (stubAddr) String() string  { return "stub" }

// oneConn returns a channel already holding conn and closed behind it.
func oneConn(conn net.Conn) chan net.Conn {
	ch := make(chan net.Conn, 1)
	ch <- conn
	close(ch)
	return ch
}
