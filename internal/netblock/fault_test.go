package netblock

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"ebslab/internal/storage"
)

// TestServerSurvivesGarbageFrames injects raw garbage and truncated frames:
// the server must drop the bad connection without crashing and keep serving
// healthy clients.
func TestServerSurvivesGarbageFrames(t *testing.T) {
	c, _ := startServer(t)
	if err := c.AddSegment(1, 64); err != nil {
		t.Fatal(err)
	}
	addr := c.RemoteAddr().String()

	// Garbage: random bytes that parse into an absurd request header.
	evil, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	evil.Write(bytes.Repeat([]byte{0xFF}, 64))
	evil.Close()

	// Truncated frame: a write header promising more payload than sent.
	trunc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [reqHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], 1)
	hdr[8] = byte(OpWrite)
	binary.LittleEndian.PutUint32(hdr[21:], 4096)
	trunc.Write(hdr[:])
	trunc.Write([]byte("short"))
	trunc.Close()

	// The healthy client still works.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Write(1, 0, make([]byte, storage.BlockSize))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy client broken after garbage injection: %v", err)
		}
	}
}

// faultyConn wraps a net.Conn and fails writes after a budget, simulating a
// frontend-network fault mid-stream.
type faultyConn struct {
	net.Conn
	budget int
}

func (f *faultyConn) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errors.New("injected network fault")
	}
	if len(p) > f.budget {
		n, _ := f.Conn.Write(p[:f.budget])
		f.budget = 0
		return n, errors.New("injected partial write")
	}
	f.budget -= len(p)
	return f.Conn.Write(p)
}

func TestClientSurfacesInjectedWriteFault(t *testing.T) {
	bs := storage.NewBlockServer(storage.NewChunkServer(1 << 20))
	srv := NewServer(bs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Allow the AddSegment exchange, then cut the link mid-write.
	c := NewClient(&faultyConn{Conn: raw, budget: reqHeaderSize + 10})
	defer c.Close()
	if err := c.AddSegment(1, 64); err != nil {
		t.Fatalf("AddSegment within budget: %v", err)
	}
	err = c.Write(1, 0, make([]byte, storage.BlockSize))
	if err == nil {
		t.Fatal("write over faulty link succeeded")
	}
}

// TestReadRequestEOFMidPayload verifies the codec reports short payloads.
func TestReadRequestEOFMidPayload(t *testing.T) {
	var buf bytes.Buffer
	var hdr [reqHeaderSize]byte
	hdr[8] = byte(OpWrite)
	binary.LittleEndian.PutUint32(hdr[21:], 100)
	buf.Write(hdr[:])
	buf.WriteString("only-20-bytes-here!!")
	if _, err := ReadRequest(&buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short payload error = %v, want unexpected EOF", err)
	}
}

// TestUnknownOpIsAnError verifies an unknown op is rejected at encode time —
// before it ever touches the wire — and the connection stays alive.
func TestUnknownOpIsAnError(t *testing.T) {
	c, _ := startServer(t)
	resp, err := c.call(&Request{Op: OpCode(42)})
	if err == nil {
		t.Fatalf("unknown op accepted: %+v", resp)
	}
	// Connection still serves.
	if err := c.AddSegment(5, 16); err != nil {
		t.Fatalf("connection dead after unknown op: %v", err)
	}
}
