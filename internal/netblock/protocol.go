// Package netblock is the frontend-network substrate of the EBS stack: the
// RPC protocol worker threads use to forward block IO to the storage
// cluster (§2.1: "the WT encapsulates the IO into a RPC request and
// forwards it to the storage cluster via the frontend network"). It
// provides a compact length-prefixed binary protocol, a server that exposes
// a storage.BlockServer over any net.Listener, and a concurrency-safe
// client with request pipelining.
package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// OpCode identifies a request type.
type OpCode uint8

// Protocol operations. The first five are the block-IO data plane; the
// fabric ops are the distributed-simulation control plane (JoinFleet,
// AssignShard, ShardResult, Heartbeat, Drain) whose payloads are opaque to
// this layer — internal/fabric defines their message bodies. The consensus
// ops replicate the fabric control plane itself: RequestVote and
// AppendEntries carry internal/consensus messages between coordinator
// replicas, and RedirectLeader lets any client ask any replica who is
// currently leading (internal/consensus and internal/fabric define the
// bodies). The gateway ops are the multi-tenant serving plane — tenants
// submit studies, poll their status, stream mid-run sketch snapshots,
// cancel, and read their own accounting; internal/gateway defines the
// bodies.
const (
	OpRead OpCode = iota + 1
	OpWrite
	OpAddSegment
	OpHasSegment
	OpStats
	OpJoinFleet
	OpAssignShard
	OpShardResult
	OpHeartbeat
	OpDrain
	OpRequestVote
	OpAppendEntries
	OpRedirectLeader
	OpSubmitStudy
	OpStudyStatus
	OpStreamSnapshot
	OpCancelStudy
	OpTenantStats
)

// Valid reports whether o is a defined protocol operation. The codec
// rejects undefined opcodes on both sides: the client refuses to encode
// them, and the server refuses to decode them (an unknown opcode makes the
// frame length ambiguous, so the connection cannot be resynchronized).
func (o OpCode) Valid() bool { return o >= OpRead && o <= OpTenantStats }

// carriesPayload reports whether a request of this op carries Length bytes
// of payload after its header. Block reads describe their payload size but
// the bytes only travel in the response; fabric ops always carry their
// (possibly empty) message body with the request.
func (o OpCode) carriesPayload() bool {
	return o == OpWrite || o >= OpJoinFleet
}

// maxPayloadFor bounds one request payload by op. Block-IO frames never
// exceed a few MiB of block data; a ShardResult legitimately carries an
// entire shard's trace records and metric rows, so it gets a larger — but
// still hard — cap, and AppendEntries gets the same cap because a
// replicated log entry embeds the shard-result frame it commits. Decoding
// commits memory chunk-by-chunk as bytes arrive (see readPayload), so a
// hostile header cannot allocate the cap up front.
func (o OpCode) maxPayloadFor() uint32 {
	if o == OpShardResult || o == OpAppendEntries {
		return maxShardPayload
	}
	return maxPayload
}

func (o OpCode) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAddSegment:
		return "add-segment"
	case OpHasSegment:
		return "has-segment"
	case OpStats:
		return "stats"
	case OpJoinFleet:
		return "join-fleet"
	case OpAssignShard:
		return "assign-shard"
	case OpShardResult:
		return "shard-result"
	case OpHeartbeat:
		return "heartbeat"
	case OpDrain:
		return "drain"
	case OpRequestVote:
		return "request-vote"
	case OpAppendEntries:
		return "append-entries"
	case OpRedirectLeader:
		return "redirect-leader"
	case OpSubmitStudy:
		return "submit-study"
	case OpStudyStatus:
		return "study-status"
	case OpStreamSnapshot:
		return "stream-snapshot"
	case OpCancelStudy:
		return "cancel-study"
	case OpTenantStats:
		return "tenant-stats"
	}
	return fmt.Sprintf("OpCode(%d)", uint8(o))
}

// Status codes in responses. StatusRedirect is the replicated control
// plane's "not the leader" answer: the payload names the leader (a
// fabric.RedirectReply), and clients surface it as *RedirectError so
// callers can re-aim at the leader instead of treating it as a failure.
const (
	StatusOK uint8 = iota
	StatusError
	StatusRedirect
)

// maxPayload bounds a single request/response payload (one protocol
// message never exceeds a few MiB of block data); maxShardPayload is the
// larger request-side cap for OpShardResult frames, which carry a whole
// shard's encoded partial results.
const (
	maxPayload      = 8 << 20
	maxShardPayload = 1 << 30
)

// MaxShardResultPayload is the wire cap on one OpShardResult frame,
// exported so senders can pre-check an encoded shard and report an
// actionable error (fewer VDs per shard) instead of a bare codec failure.
const MaxShardResultPayload = maxShardPayload

// header layout (little endian):
//
//	request:  id u64 | op u8 | seg i32 | offset i64 | length u32 | payload
//	response: id u64 | status u8 | length u32 | payload
const (
	reqHeaderSize  = 8 + 1 + 4 + 8 + 4
	respHeaderSize = 8 + 1 + 4
)

// Request is one RPC from the compute side.
type Request struct {
	ID      uint64
	Op      OpCode
	Segment int32
	Offset  int64
	Length  uint32 // read length, or AddSegment size in blocks
	Payload []byte // write data
}

// Response is the storage side's answer.
type Response struct {
	ID      uint64
	Status  uint8
	Payload []byte // read data, or error text when Status != StatusOK
}

// Err converts an error response into a Go error.
func (r *Response) Err() error {
	switch r.Status {
	case StatusOK:
		return nil
	case StatusRedirect:
		return &RedirectError{Info: append([]byte(nil), r.Payload...)}
	}
	return fmt.Errorf("netblock: remote: %s", r.Payload)
}

// RedirectError reports that the peer is a replicated-service follower (or
// mid-election) and cannot serve the call. Info is the peer's leader hint,
// opaque to this layer (internal/fabric encodes a RedirectReply there);
// clients should decode it and retry against the named leader.
type RedirectError struct {
	Info []byte
}

func (e *RedirectError) Error() string {
	return "netblock: peer is not the leader"
}

// Errors of the codec layer.
var (
	ErrPayloadTooLarge = errors.New("netblock: payload exceeds protocol limit")
	ErrShortHeader     = errors.New("netblock: short header")
	ErrUnknownOp       = errors.New("netblock: unknown opcode")
)

// WriteRequest encodes req to w.
func WriteRequest(w io.Writer, req *Request) error {
	if err := req.validate(); err != nil {
		return err
	}
	var hdr [reqHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], req.ID)
	hdr[8] = byte(req.Op)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(req.Segment))
	binary.LittleEndian.PutUint64(hdr[13:], uint64(req.Offset))
	binary.LittleEndian.PutUint32(hdr[21:], req.Length)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// The payload length is implied: payload-carrying ops carry Length bytes.
	if req.Op.carriesPayload() {
		if _, err := w.Write(req.Payload); err != nil {
			return err
		}
	}
	return nil
}

// validate rejects a request the codec could not frame, before any bytes
// hit the wire — so an invalid request never poisons a healthy connection.
func (req *Request) validate() error {
	if !req.Op.Valid() {
		return fmt.Errorf("%w %d", ErrUnknownOp, uint8(req.Op))
	}
	max := req.Op.maxPayloadFor()
	if uint64(len(req.Payload)) > uint64(max) || req.Length > max {
		return ErrPayloadTooLarge
	}
	if req.Op.carriesPayload() && uint32(len(req.Payload)) != req.Length {
		return fmt.Errorf("netblock: %s payload %d != length %d", req.Op, len(req.Payload), req.Length)
	}
	return nil
}

// ReadRequest decodes one request from r.
func ReadRequest(r io.Reader) (*Request, error) {
	var hdr [reqHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	req := &Request{
		ID:      binary.LittleEndian.Uint64(hdr[0:]),
		Op:      OpCode(hdr[8]),
		Segment: int32(binary.LittleEndian.Uint32(hdr[9:])),
		Offset:  int64(binary.LittleEndian.Uint64(hdr[13:])),
		Length:  binary.LittleEndian.Uint32(hdr[21:]),
	}
	if !req.Op.Valid() {
		return nil, fmt.Errorf("%w %d", ErrUnknownOp, uint8(req.Op))
	}
	if req.Length > req.Op.maxPayloadFor() {
		return nil, ErrPayloadTooLarge
	}
	if req.Op.carriesPayload() {
		p, err := readPayload(r, req.Length)
		if err != nil {
			return nil, err
		}
		req.Payload = p
	}
	return req, nil
}

// allocChunk bounds how much payload memory is committed ahead of the bytes
// actually arriving, so a frame header claiming maxPayload cannot make the
// decoder allocate 8 MiB for a peer that then sends nothing.
const allocChunk = 64 << 10

// readPayload reads exactly n payload bytes, growing the buffer chunk by
// chunk as data arrives. EOF mid-payload reports io.ErrUnexpectedEOF.
func readPayload(r io.Reader, n uint32) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	first := n
	if first > allocChunk {
		first = allocChunk
	}
	buf := make([]byte, 0, first)
	for remaining := int(n); remaining > 0; {
		chunk := remaining
		if chunk > allocChunk {
			chunk = allocChunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		remaining -= chunk
	}
	return buf, nil
}

// WriteResponse encodes resp to w.
func WriteResponse(w io.Writer, resp *Response) error {
	if len(resp.Payload) > maxPayload {
		return ErrPayloadTooLarge
	}
	var hdr [respHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], resp.ID)
	hdr[8] = resp.Status
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(resp.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(resp.Payload) > 0 {
		if _, err := w.Write(resp.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse decodes one response from r.
func ReadResponse(r io.Reader) (*Response, error) {
	var hdr [respHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	resp := &Response{
		ID:     binary.LittleEndian.Uint64(hdr[0:]),
		Status: hdr[8],
	}
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n > maxPayload {
		return nil, ErrPayloadTooLarge
	}
	p, err := readPayload(r, n)
	if err != nil {
		return nil, err
	}
	resp.Payload = p
	return resp, nil
}
