// Package netblock is the frontend-network substrate of the EBS stack: the
// RPC protocol worker threads use to forward block IO to the storage
// cluster (§2.1: "the WT encapsulates the IO into a RPC request and
// forwards it to the storage cluster via the frontend network"). It
// provides a compact length-prefixed binary protocol, a server that exposes
// a storage.BlockServer over any net.Listener, and a concurrency-safe
// client with request pipelining.
package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// OpCode identifies a request type.
type OpCode uint8

// Protocol operations.
const (
	OpRead OpCode = iota + 1
	OpWrite
	OpAddSegment
	OpHasSegment
	OpStats
)

// Valid reports whether o is a defined protocol operation. The codec
// rejects undefined opcodes on both sides: the client refuses to encode
// them, and the server refuses to decode them (an unknown opcode makes the
// frame length ambiguous, so the connection cannot be resynchronized).
func (o OpCode) Valid() bool { return o >= OpRead && o <= OpStats }

func (o OpCode) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAddSegment:
		return "add-segment"
	case OpHasSegment:
		return "has-segment"
	case OpStats:
		return "stats"
	}
	return fmt.Sprintf("OpCode(%d)", uint8(o))
}

// Status codes in responses.
const (
	StatusOK uint8 = iota
	StatusError
)

// maxPayload bounds a single request/response payload (one protocol
// message never exceeds a few MiB of block data).
const maxPayload = 8 << 20

// header layout (little endian):
//
//	request:  id u64 | op u8 | seg i32 | offset i64 | length u32 | payload
//	response: id u64 | status u8 | length u32 | payload
const (
	reqHeaderSize  = 8 + 1 + 4 + 8 + 4
	respHeaderSize = 8 + 1 + 4
)

// Request is one RPC from the compute side.
type Request struct {
	ID      uint64
	Op      OpCode
	Segment int32
	Offset  int64
	Length  uint32 // read length, or AddSegment size in blocks
	Payload []byte // write data
}

// Response is the storage side's answer.
type Response struct {
	ID      uint64
	Status  uint8
	Payload []byte // read data, or error text when Status != StatusOK
}

// Err converts an error response into a Go error.
func (r *Response) Err() error {
	if r.Status == StatusOK {
		return nil
	}
	return fmt.Errorf("netblock: remote: %s", r.Payload)
}

// Errors of the codec layer.
var (
	ErrPayloadTooLarge = errors.New("netblock: payload exceeds protocol limit")
	ErrShortHeader     = errors.New("netblock: short header")
	ErrUnknownOp       = errors.New("netblock: unknown opcode")
)

// WriteRequest encodes req to w.
func WriteRequest(w io.Writer, req *Request) error {
	if err := req.validate(); err != nil {
		return err
	}
	var hdr [reqHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], req.ID)
	hdr[8] = byte(req.Op)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(req.Segment))
	binary.LittleEndian.PutUint64(hdr[13:], uint64(req.Offset))
	binary.LittleEndian.PutUint32(hdr[21:], req.Length)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// The payload length is implied: writes carry Length bytes.
	if req.Op == OpWrite {
		if _, err := w.Write(req.Payload); err != nil {
			return err
		}
	}
	return nil
}

// validate rejects a request the codec could not frame, before any bytes
// hit the wire — so an invalid request never poisons a healthy connection.
func (req *Request) validate() error {
	if !req.Op.Valid() {
		return fmt.Errorf("%w %d", ErrUnknownOp, uint8(req.Op))
	}
	if len(req.Payload) > maxPayload || req.Length > maxPayload {
		return ErrPayloadTooLarge
	}
	if req.Op == OpWrite && uint32(len(req.Payload)) != req.Length {
		return fmt.Errorf("netblock: write payload %d != length %d", len(req.Payload), req.Length)
	}
	return nil
}

// ReadRequest decodes one request from r.
func ReadRequest(r io.Reader) (*Request, error) {
	var hdr [reqHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	req := &Request{
		ID:      binary.LittleEndian.Uint64(hdr[0:]),
		Op:      OpCode(hdr[8]),
		Segment: int32(binary.LittleEndian.Uint32(hdr[9:])),
		Offset:  int64(binary.LittleEndian.Uint64(hdr[13:])),
		Length:  binary.LittleEndian.Uint32(hdr[21:]),
	}
	if !req.Op.Valid() {
		return nil, fmt.Errorf("%w %d", ErrUnknownOp, uint8(req.Op))
	}
	if req.Length > maxPayload {
		return nil, ErrPayloadTooLarge
	}
	if req.Op == OpWrite {
		p, err := readPayload(r, req.Length)
		if err != nil {
			return nil, err
		}
		req.Payload = p
	}
	return req, nil
}

// allocChunk bounds how much payload memory is committed ahead of the bytes
// actually arriving, so a frame header claiming maxPayload cannot make the
// decoder allocate 8 MiB for a peer that then sends nothing.
const allocChunk = 64 << 10

// readPayload reads exactly n payload bytes, growing the buffer chunk by
// chunk as data arrives. EOF mid-payload reports io.ErrUnexpectedEOF.
func readPayload(r io.Reader, n uint32) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	first := n
	if first > allocChunk {
		first = allocChunk
	}
	buf := make([]byte, 0, first)
	for remaining := int(n); remaining > 0; {
		chunk := remaining
		if chunk > allocChunk {
			chunk = allocChunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		remaining -= chunk
	}
	return buf, nil
}

// WriteResponse encodes resp to w.
func WriteResponse(w io.Writer, resp *Response) error {
	if len(resp.Payload) > maxPayload {
		return ErrPayloadTooLarge
	}
	var hdr [respHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], resp.ID)
	hdr[8] = resp.Status
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(resp.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(resp.Payload) > 0 {
		if _, err := w.Write(resp.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse decodes one response from r.
func ReadResponse(r io.Reader) (*Response, error) {
	var hdr [respHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	resp := &Response{
		ID:     binary.LittleEndian.Uint64(hdr[0:]),
		Status: hdr[8],
	}
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n > maxPayload {
		return nil, ErrPayloadTooLarge
	}
	p, err := readPayload(r, n)
	if err != nil {
		return nil, err
	}
	resp.Payload = p
	return resp, nil
}
