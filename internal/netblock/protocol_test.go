package netblock

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"testing"
)

// reqFrame assembles a raw request header (plus optional payload bytes) so
// the decode tests can craft frames the encoder would refuse to produce.
func reqFrame(id uint64, op OpCode, length uint32, payload []byte) []byte {
	hdr := make([]byte, reqHeaderSize)
	binary.LittleEndian.PutUint64(hdr[0:], id)
	hdr[8] = byte(op)
	binary.LittleEndian.PutUint32(hdr[21:], length)
	return append(hdr, payload...)
}

// respFrame assembles a raw response header plus optional payload bytes.
func respFrame(id uint64, status uint8, length uint32, payload []byte) []byte {
	hdr := make([]byte, respHeaderSize)
	binary.LittleEndian.PutUint64(hdr[0:], id)
	hdr[8] = status
	binary.LittleEndian.PutUint32(hdr[9:], length)
	return append(hdr, payload...)
}

// TestReadRequestErrors drives ReadRequest through every malformed-frame
// class: each must surface a typed error — never a panic, never a hang on a
// finite reader, never an allocation sized by the attacker's header.
func TestReadRequestErrors(t *testing.T) {
	cases := []struct {
		name string
		wire []byte
		want error // errors.Is target; nil means "any error"
	}{
		{"empty stream", nil, io.EOF},
		{"truncated header", reqFrame(1, OpRead, 0, nil)[:reqHeaderSize-3], io.ErrUnexpectedEOF},
		{"one header byte", []byte{0x01}, io.ErrUnexpectedEOF},
		{"zero opcode", reqFrame(1, OpCode(0), 0, nil), ErrUnknownOp},
		{"unknown opcode", reqFrame(1, OpCode(42), 0, nil), ErrUnknownOp},
		{"all-ones garbage", bytes.Repeat([]byte{0xFF}, reqHeaderSize), ErrUnknownOp},
		{"oversized length prefix", reqFrame(1, OpWrite, maxPayload+1, nil), ErrPayloadTooLarge},
		{"max length prefix", reqFrame(1, OpWrite, ^uint32(0), nil), ErrPayloadTooLarge},
		{"write header without payload", reqFrame(1, OpWrite, 4096, nil), io.ErrUnexpectedEOF},
		{"write short payload", reqFrame(1, OpWrite, 64, []byte("ten bytes.")), io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := ReadRequest(bytes.NewReader(tc.wire))
			if err == nil {
				t.Fatalf("decoded %+v from malformed frame", req)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestReadResponseErrors is the response-side decode table.
func TestReadResponseErrors(t *testing.T) {
	cases := []struct {
		name string
		wire []byte
		want error
	}{
		{"empty stream", nil, io.EOF},
		{"truncated header", respFrame(1, StatusOK, 0, nil)[:respHeaderSize-2], io.ErrUnexpectedEOF},
		{"oversized length prefix", respFrame(1, StatusOK, maxPayload+1, nil), ErrPayloadTooLarge},
		{"max length prefix", respFrame(1, StatusOK, ^uint32(0), nil), ErrPayloadTooLarge},
		{"payload missing", respFrame(1, StatusOK, 512, nil), io.ErrUnexpectedEOF},
		{"payload short", respFrame(1, StatusError, 64, []byte("boom")), io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ReadResponse(bytes.NewReader(tc.wire))
			if err == nil {
				t.Fatalf("decoded %+v from malformed frame", resp)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestWriteRequestValidation checks the encoder refuses unframeable requests
// before any byte hits the wire, so a bad request cannot desync a healthy
// connection.
func TestWriteRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"zero opcode", Request{}, ErrUnknownOp},
		{"unknown opcode", Request{Op: OpCode(99)}, ErrUnknownOp},
		{"oversized read length", Request{Op: OpRead, Length: maxPayload + 1}, ErrPayloadTooLarge},
		{"write length mismatch", Request{Op: OpWrite, Length: 8, Payload: []byte("abc")}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := WriteRequest(&buf, &tc.req)
			if err == nil {
				t.Fatal("invalid request encoded")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
			if buf.Len() != 0 {
				t.Fatalf("invalid request leaked %d bytes onto the wire", buf.Len())
			}
		})
	}
}

// TestDecoderBoundsAllocation pins the chunked-payload defence: a header
// claiming the full 8 MiB backed by an empty stream must fail after
// committing at most one chunk, not the attacker's full claim.
func TestDecoderBoundsAllocation(t *testing.T) {
	wire := respFrame(1, StatusOK, maxPayload, nil)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadResponse(bytes.NewReader(wire))
	runtime.ReadMemStats(&after)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error = %v, want unexpected EOF", err)
	}
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<20 {
		t.Fatalf("decoder committed %d bytes against a header-only stream (chunk is %d)", delta, allocChunk)
	}
}

// TestLargePayloadRoundTrip exercises the multi-chunk readPayload path with
// a payload several chunks long.
func TestLargePayloadRoundTrip(t *testing.T) {
	payload := make([]byte, 3*allocChunk+777)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var buf bytes.Buffer
	req := &Request{ID: 5, Op: OpWrite, Segment: 2, Length: uint32(len(payload)), Payload: payload}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("multi-chunk payload corrupted in round trip")
	}
	if err := WriteResponse(&buf, &Response{ID: 5, Payload: payload}); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	gr, err := ReadResponse(&buf)
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if !bytes.Equal(gr.Payload, payload) {
		t.Fatal("multi-chunk response payload corrupted in round trip")
	}
}
