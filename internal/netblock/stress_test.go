// Stress tests: N concurrent clients against one Server, with and without
// wire faults, auditing per-client byte accounting against the server's own
// counters. These run under -race in `make ci`.
package netblock_test

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"ebslab/internal/chaos"
	"ebslab/internal/netblock"
	"ebslab/internal/storage"
)

const stressIters = 25

// stressServer starts a TCP server over a fresh BlockServer with one
// pre-created segment per client (created before any fault hook exists, so
// setup is exactly-once).
func stressServer(t *testing.T, clients int) (*netblock.Server, *storage.BlockServer, string) {
	t.Helper()
	bs := storage.NewBlockServer(storage.NewChunkServer(64 << 20))
	srv := netblock.NewServer(bs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	setup, err := netblock.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < clients; w++ {
		if err := setup.AddSegment(storage.SegKey(w+1), 4*stressIters); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()
	return srv, bs, l.Addr().String()
}

// stressPattern is the deterministic block a client writes at iteration i,
// so readback can verify durability byte-for-byte.
func stressPattern(w, i int) []byte {
	buf := make([]byte, storage.BlockSize)
	for j := range buf {
		buf[j] = byte(w*131 + i*31 + j)
	}
	return buf
}

// TestStressClientsAgainstFaultyServer hammers one server from several
// clients while the chaos fault hook resets, drops, delays, truncates, and
// garbles exchanges. The accounting laws under at-least-once retry:
// every acknowledged write is durable and readable bit-exactly once the
// faults stop, and the server's counters are lower-bounded by what the
// clients got acknowledged.
func TestStressClientsAgainstFaultyServer(t *testing.T) {
	const clients = 4
	srv, bs, addr := stressServer(t, clients)

	plan := &chaos.Plan{Seed: 99, Net: chaos.NetFaults{
		ResetRate: 0.05, DropRate: 0.04, DelayRate: 0.05,
		TruncateRate: 0.03, GarbageRate: 0.03, ErrorRate: 0.05,
		DelayUS: 200,
	}}
	srv.SetFaultHook(plan.NewFaultHook(1))

	ackedBytes := make([]int64, clients)
	ackedIters := make([][]bool, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		w := w
		ackedIters[w] = make([]bool, stressIters)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := netblock.DialConfig("tcp", addr, netblock.Config{
				Timeout: 250 * time.Millisecond, MaxRetries: 8,
				BackoffBase: time.Millisecond, Seed: int64(w),
			})
			if err != nil {
				t.Errorf("client %d: dial: %v", w, err)
				return
			}
			defer c.Close()
			seg := storage.SegKey(w + 1)
			for i := 0; i < stressIters; i++ {
				off := int64(i) * storage.BlockSize
				pat := stressPattern(w, i)
				if err := c.Write(seg, off, pat); err == nil {
					ackedIters[w][i] = true
					ackedBytes[w] += int64(len(pat))
				}
				// Reads may fail under fault pressure; a success for an
				// acknowledged offset must return the durable pattern.
				if got, err := c.Read(seg, off, storage.BlockSize); err == nil && ackedIters[w][i] {
					if !bytes.Equal(got, pat) {
						t.Errorf("client %d iter %d: read-after-acked-write mismatch", w, i)
					}
				}
			}
		}()
	}
	wg.Wait()

	if srv.FaultsInjected() == 0 {
		t.Fatal("fault hook never fired; the stress exercised nothing")
	}

	// Faults off: every acknowledged write must be durable.
	srv.SetFaultHook(nil)
	verify, err := netblock.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	var totalAcked int64
	for w := 0; w < clients; w++ {
		totalAcked += ackedBytes[w]
		for i, acked := range ackedIters[w] {
			if !acked {
				continue
			}
			got, err := verify.Read(storage.SegKey(w+1), int64(i)*storage.BlockSize, storage.BlockSize)
			if err != nil {
				t.Fatalf("client %d iter %d: verify read: %v", w, i, err)
			}
			if !bytes.Equal(got, stressPattern(w, i)) {
				t.Fatalf("client %d iter %d: acknowledged write not durable", w, i)
			}
		}
	}
	// At-least-once: the server executed no fewer write bytes than the
	// clients got acknowledged (a retried write can execute twice; a dropped
	// response executes without an ack — both only push the counter up).
	_, wBytes, _ := bs.Traffic()
	if wBytes < totalAcked {
		t.Fatalf("server write bytes %d < acknowledged bytes %d: an acked write vanished", wBytes, totalAcked)
	}
}

// TestStressAccountingExactWithoutFaults is the control: with no faults,
// per-client accounting and the server's counters must agree exactly.
func TestStressAccountingExactWithoutFaults(t *testing.T) {
	const clients = 4
	srv, bs, addr := stressServer(t, clients)
	reqsBefore := srv.Requests()

	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := netblock.DialConfig("tcp", addr, netblock.Config{Timeout: 10 * time.Second})
			if err != nil {
				t.Errorf("client %d: dial: %v", w, err)
				return
			}
			defer c.Close()
			seg := storage.SegKey(w + 1)
			for i := 0; i < stressIters; i++ {
				off := int64(i) * storage.BlockSize
				pat := stressPattern(w, i)
				if err := c.Write(seg, off, pat); err != nil {
					t.Errorf("client %d iter %d: write: %v", w, i, err)
					return
				}
				got, err := c.Read(seg, off, storage.BlockSize)
				if err != nil {
					t.Errorf("client %d iter %d: read: %v", w, i, err)
					return
				}
				if !bytes.Equal(got, pat) {
					t.Errorf("client %d iter %d: readback mismatch", w, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	want := int64(clients * stressIters * storage.BlockSize)
	rBytes, wBytes, _ := bs.Traffic()
	if wBytes != want {
		t.Fatalf("server write bytes = %d, want exactly %d", wBytes, want)
	}
	if rBytes != want {
		t.Fatalf("server read bytes = %d, want exactly %d", rBytes, want)
	}
	if got, wantReqs := srv.Requests()-reqsBefore, int64(clients*2*stressIters); got != wantReqs {
		t.Fatalf("server executed %d requests, want exactly %d", got, wantReqs)
	}
	if srv.FaultsInjected() != 0 {
		t.Fatalf("control run injected %d faults", srv.FaultsInjected())
	}
}
