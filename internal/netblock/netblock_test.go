package netblock

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"ebslab/internal/storage"
)

// startServer spins up a server on loopback TCP and returns a connected
// client plus a cleanup func.
func startServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	bs := storage.NewBlockServer(storage.NewChunkServer(4 << 20))
	srv := NewServer(bs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(l)
	client, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
	})
	return client, srv
}

func TestRoundTripOverTCP(t *testing.T) {
	c, srv := startServer(t)
	if err := c.AddSegment(1, 1024); err != nil {
		t.Fatalf("AddSegment: %v", err)
	}
	if !c.HasSegment(1) {
		t.Fatal("HasSegment(1) false after add")
	}
	if c.HasSegment(2) {
		t.Fatal("HasSegment(2) true")
	}
	data := bytes.Repeat([]byte{0xAB}, storage.BlockSize)
	if err := c.Write(1, storage.BlockSize, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := c.Read(1, storage.BlockSize, storage.BlockSize)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	r, w, _, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if r != int64(storage.BlockSize) || w != int64(storage.BlockSize) {
		t.Fatalf("stats = %d/%d", r, w)
	}
	if srv.Requests() < 5 {
		t.Fatalf("server saw %d requests", srv.Requests())
	}
}

func TestRemoteErrorsSurface(t *testing.T) {
	c, _ := startServer(t)
	// Write to an unhosted segment.
	if err := c.Write(9, 0, make([]byte, storage.BlockSize)); err == nil {
		t.Fatal("write to unhosted segment succeeded")
	}
	// Unaligned IO.
	c.AddSegment(1, 16)
	if err := c.Write(1, 1, make([]byte, storage.BlockSize)); err == nil {
		t.Fatal("unaligned write succeeded")
	}
	if _, err := c.Read(1, 0, 100); err == nil {
		t.Fatal("unaligned read succeeded")
	}
	// Duplicate segment.
	if err := c.AddSegment(1, 16); err == nil {
		t.Fatal("duplicate AddSegment succeeded")
	}
	// The connection must survive errors.
	if err := c.Write(1, 0, make([]byte, storage.BlockSize)); err != nil {
		t.Fatalf("connection broken after remote errors: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	c, _ := startServer(t)
	if err := c.AddSegment(1, 4096); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, storage.BlockSize)
			for i := range buf {
				buf[i] = byte(w)
			}
			for i := 0; i < iters; i++ {
				off := int64((w*iters + i)) * storage.BlockSize
				if err := c.Write(1, off, buf); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				got, err := c.Read(1, off, storage.BlockSize)
				if err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if got[0] != byte(w) {
					errs <- fmt.Errorf("worker %d read wrong data", w)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestProtocolCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{ID: 7, Op: OpWrite, Segment: 3, Offset: 8192, Length: 8, Payload: []byte("abcdefgh")}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if got.ID != 7 || got.Op != OpWrite || got.Segment != 3 || got.Offset != 8192 || string(got.Payload) != "abcdefgh" {
		t.Fatalf("request round trip: %+v", got)
	}

	resp := &Response{ID: 7, Status: StatusError, Payload: []byte("boom")}
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	gr, err := ReadResponse(&buf)
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if gr.Err() == nil || gr.Err().Error() != "netblock: remote: boom" {
		t.Fatalf("error decoding: %v", gr.Err())
	}
}

func TestProtocolRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, maxPayload+1)
	if err := WriteRequest(&buf, &Request{Op: OpWrite, Length: uint32(len(big)), Payload: big}); err == nil {
		t.Fatal("oversized request accepted")
	}
	if err := WriteResponse(&buf, &Response{Payload: big}); err == nil {
		t.Fatal("oversized response accepted")
	}
	// A malicious length header must be rejected, not allocated.
	hdr := make([]byte, respHeaderSize)
	hdr[8] = StatusOK
	for i := 9; i < 13; i++ {
		hdr[i] = 0xFF
	}
	if _, err := ReadResponse(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized response length accepted")
	}
}

func TestWritePayloadLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := WriteRequest(&buf, &Request{Op: OpWrite, Length: 10, Payload: []byte("abc")})
	if err == nil {
		t.Fatal("length/payload mismatch accepted")
	}
}

func TestClientFailsCleanlyOnServerClose(t *testing.T) {
	bs := storage.NewBlockServer(storage.NewChunkServer(1 << 20))
	srv := NewServer(bs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	c, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.AddSegment(1, 16)
	srv.Close()
	// Subsequent calls fail with an error rather than hanging.
	if err := c.Write(1, 0, make([]byte, storage.BlockSize)); err == nil {
		t.Fatal("write succeeded after server close")
	}
	c.Close()
}

func TestOpCodeString(t *testing.T) {
	for _, op := range []OpCode{OpRead, OpWrite, OpAddSegment, OpHasSegment, OpStats} {
		if op.String() == "" || op.String()[0] == 'O' {
			t.Fatalf("OpCode %d string = %q", op, op.String())
		}
	}
	if OpCode(99).String() != "OpCode(99)" {
		t.Fatal("unknown opcode string")
	}
}
