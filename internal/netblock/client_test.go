package netblock

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ebslab/internal/storage"
)

// TestInFlightCallFailsWhenConnDies is the regression for the readLoop
// contract: a call whose connection dies mid-response must get a real error
// promptly — not hang forever on its response channel.
func TestInFlightCallFailsWhenConnDies(t *testing.T) {
	srvConn, cliConn := net.Pipe()
	c := NewClient(cliConn)
	defer c.Close()
	go func() {
		// Accept the request, then kill the connection without answering —
		// a server crash mid-call.
		ReadRequest(srvConn)
		srvConn.Close()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(1, 0, storage.BlockSize)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call succeeded against a server that died mid-call")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after the connection died")
	}
}

// TestServerCloseMidCallReturnsWithinDeadline kills a real TCP server while
// a call is stalled inside it: the client must return well before its
// (generous) deadline, via the readLoop's connection-death signal.
func TestServerCloseMidCallReturnsWithinDeadline(t *testing.T) {
	bs := storage.NewBlockServer(storage.NewChunkServer(1 << 20))
	srv := NewServer(bs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	c, err := DialConfig("tcp", l.Addr().String(), Config{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddSegment(1, 16); err != nil {
		t.Fatal(err)
	}
	// Stall the next request long enough for Close to land mid-call.
	srv.SetFaultHook(func(*Request) FaultDecision {
		return FaultDecision{DelayUS: 300_000}
	})
	go func() {
		time.Sleep(30 * time.Millisecond)
		srv.Close()
	}()
	start := time.Now()
	err = c.Write(1, 0, make([]byte, storage.BlockSize))
	if err == nil {
		t.Fatal("write succeeded through a server killed mid-call")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("call took %v to fail; the deadline, not the conn death, saved it", elapsed)
	}
}

// TestCallTimesOutOnSilentServer: a peer that accepts the request but never
// answers (and keeps the connection open) is caught by the per-call
// deadline.
func TestCallTimesOutOnSilentServer(t *testing.T) {
	srvConn, cliConn := net.Pipe()
	c := NewClientConfig(cliConn, Config{Timeout: 50 * time.Millisecond})
	defer c.Close()
	silent := make(chan struct{})
	go func() {
		ReadRequest(srvConn) // swallow the request, never reply
		<-silent
		srvConn.Close()
	}()
	defer close(silent)
	_, err := c.Read(1, 0, storage.BlockSize)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
}

// TestRedialAfterReset: connection resets are retried on a fresh connection,
// transparently to the caller, with the retry counter recording the work.
func TestRedialAfterReset(t *testing.T) {
	bs := storage.NewBlockServer(storage.NewChunkServer(1 << 20))
	srv := NewServer(bs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	var n atomic.Int64
	srv.SetFaultHook(func(*Request) FaultDecision {
		if n.Add(1) <= 2 {
			return FaultDecision{Fault: FaultReset}
		}
		return FaultDecision{}
	})
	c, err := DialConfig("tcp", l.Addr().String(), Config{
		Timeout: 5 * time.Second, MaxRetries: 5, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddSegment(1, 16); err != nil {
		t.Fatalf("call failed despite retry budget: %v", err)
	}
	if c.Retries() == 0 {
		t.Fatal("resets were served without any recorded retry")
	}
	if srv.FaultsInjected() < 2 {
		t.Fatalf("server injected %d faults, want >= 2", srv.FaultsInjected())
	}
	// The redialed connection is healthy.
	if err := c.Write(1, 0, make([]byte, storage.BlockSize)); err != nil {
		t.Fatalf("connection unhealthy after redial: %v", err)
	}
}

// TestNoRetriesWithoutBudget: the zero Config keeps the legacy semantics —
// one attempt, no retry.
func TestNoRetriesWithoutBudget(t *testing.T) {
	srvConn, cliConn := net.Pipe()
	c := NewClient(cliConn)
	defer c.Close()
	go func() {
		ReadRequest(srvConn)
		srvConn.Close()
	}()
	if _, err := c.Read(1, 0, storage.BlockSize); err == nil {
		t.Fatal("call succeeded over a dying pipe")
	}
	if got := c.Retries(); got != 0 {
		t.Fatalf("zero-config client retried %d times", got)
	}
}

// TestBackoffDeterministicJitter pins the backoff schedule: exponential
// growth capped at BackoffCap, jitter inside [50%, 100%], and bit-identical
// for the same (Seed, call ID, attempt).
func TestBackoffDeterministicJitter(t *testing.T) {
	mk := func(seed int64) *Client { return &Client{cfg: Config{Seed: seed}} }
	a, b := mk(42), mk(42)
	base, cap := time.Millisecond, 250*time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		d := a.backoff(7, attempt)
		if d != b.backoff(7, attempt) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		want := base << uint(attempt)
		if want <= 0 || want > cap {
			want = cap
		}
		if d < want/2 || d > want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
		}
	}
	other := mk(43)
	same := true
	for attempt := 0; attempt < 12; attempt++ {
		if other.backoff(7, attempt) != a.backoff(7, attempt) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not perturb the jitter stream")
	}
}
