// Package guestcache models the VM operating system's page cache — the
// first cache level of §2.2 ("the native page cache in the VM's operating
// system can cache part of the IO requests"). It explains the paper's §7.2
// observation that EBS-visible hot blocks are write-dominant: applications
// re-read hot data out of guest memory, so repeated reads never reach the
// block store, while writes must (eventually) be flushed down.
//
// The model is a page-granular LRU with write-back semantics: reads hit in
// memory; writes dirty pages and are flushed to the block device either on
// eviction or by the periodic flusher (pdflush-style). Filter transforms an
// application-level IO stream into the EBS-visible stream.
package guestcache

import (
	"container/list"

	"ebslab/internal/trace"
)

// PageSize is the guest page granularity.
const PageSize int64 = 4 << 10

// IO is one application-level block IO inside the guest.
type IO struct {
	TimeUS int64
	Op     trace.Op
	Offset int64
	Size   int32
}

// Config tunes the page cache.
type Config struct {
	// CachePages is the page-cache capacity in pages.
	CachePages int
	// FlushIntervalUS is the write-back period: dirty pages older than this
	// are flushed (30 s in a default Linux guest; scale down for short
	// windows).
	FlushIntervalUS int64
	// WriteThrough forces every write straight to the device (O_DIRECT /
	// fsync-heavy workloads).
	WriteThrough bool
}

// DefaultConfig is a small guest with a 1 GiB page cache flushing every
// five seconds.
func DefaultConfig() Config {
	return Config{CachePages: int(1 << 30 / PageSize), FlushIntervalUS: 5_000_000}
}

// Stats counts what the cache absorbed and emitted.
type Stats struct {
	AppReads, AppWrites  int
	ReadHits             int
	DeviceReads          int // read IOs that reached the block device
	DeviceWrites         int // write IOs that reached the block device
	FlushedPages         int
	EvictionFlushedPages int
}

// page is one cached guest page.
type page struct {
	idx     int64
	dirty   bool
	dirtyAt int64
}

// Cache is the guest page cache.
type Cache struct {
	cfg  Config
	ll   *list.List // front = most recent
	pos  map[int64]*list.Element
	stat Stats

	lastFlush int64
	emit      func(IO) // device-level sink
}

// New creates a page cache that forwards device-level IO to emit.
func New(cfg Config, emit func(IO)) *Cache {
	if cfg.CachePages <= 0 {
		panic("guestcache: cache must hold at least one page")
	}
	if cfg.FlushIntervalUS <= 0 {
		cfg.FlushIntervalUS = 5_000_000
	}
	return &Cache{
		cfg:  cfg,
		ll:   list.New(),
		pos:  make(map[int64]*list.Element, cfg.CachePages),
		emit: emit,
	}
}

// Stats returns the counters so far.
func (c *Cache) Stats() Stats { return c.stat }

// Access runs one application IO through the cache. IOs must arrive in
// non-decreasing time order (the periodic flusher keys off IO timestamps).
func (c *Cache) Access(io IO) {
	c.maybeFlush(io.TimeUS)
	first := io.Offset / PageSize
	last := (io.Offset + int64(io.Size) - 1) / PageSize
	if io.Op == trace.OpRead {
		c.stat.AppReads++
		// Contiguous missing ranges become device reads.
		missStart := int64(-1)
		flushMiss := func(end int64) {
			if missStart < 0 {
				return
			}
			c.stat.DeviceReads++
			c.emit(IO{TimeUS: io.TimeUS, Op: trace.OpRead,
				Offset: missStart * PageSize, Size: int32((end - missStart) * PageSize)})
			missStart = -1
		}
		allHit := true
		for p := first; p <= last; p++ {
			if el, ok := c.pos[p]; ok {
				c.ll.MoveToFront(el)
				flushMiss(p)
				continue
			}
			allHit = false
			if missStart < 0 {
				missStart = p
			}
			c.insert(p, false, io.TimeUS)
		}
		flushMiss(last + 1)
		if allHit {
			c.stat.ReadHits++
		}
		return
	}
	c.stat.AppWrites++
	if c.cfg.WriteThrough {
		c.stat.DeviceWrites++
		c.emit(IO{TimeUS: io.TimeUS, Op: trace.OpWrite, Offset: io.Offset, Size: io.Size})
		// Pages are cached clean (data also in memory).
		for p := first; p <= last; p++ {
			if el, ok := c.pos[p]; ok {
				c.ll.MoveToFront(el)
				el.Value.(*page).dirty = false
			} else {
				c.insert(p, false, io.TimeUS)
			}
		}
		return
	}
	for p := first; p <= last; p++ {
		if el, ok := c.pos[p]; ok {
			c.ll.MoveToFront(el)
			pg := el.Value.(*page)
			if !pg.dirty {
				pg.dirty = true
				pg.dirtyAt = io.TimeUS
			}
		} else {
			c.insert(p, true, io.TimeUS)
		}
	}
}

// insert adds a page, evicting (and write-back flushing) as needed.
func (c *Cache) insert(idx int64, dirty bool, now int64) {
	if c.ll.Len() >= c.cfg.CachePages {
		back := c.ll.Back()
		pg := back.Value.(*page)
		if pg.dirty {
			c.stat.EvictionFlushedPages++
			c.stat.DeviceWrites++
			c.emit(IO{TimeUS: now, Op: trace.OpWrite, Offset: pg.idx * PageSize, Size: int32(PageSize)})
		}
		c.ll.Remove(back)
		delete(c.pos, pg.idx)
	}
	c.pos[idx] = c.ll.PushFront(&page{idx: idx, dirty: dirty, dirtyAt: now})
}

// maybeFlush runs the periodic write-back: every FlushIntervalUS, all dirty
// pages are written down, coalescing contiguous runs into single IOs.
func (c *Cache) maybeFlush(now int64) {
	if now-c.lastFlush < c.cfg.FlushIntervalUS {
		return
	}
	c.lastFlush = now
	// Collect dirty page indices.
	var dirty []int64
	for el := c.ll.Front(); el != nil; el = el.Next() {
		pg := el.Value.(*page)
		if pg.dirty {
			dirty = append(dirty, pg.idx)
			pg.dirty = false
		}
	}
	if len(dirty) == 0 {
		return
	}
	sortInt64(dirty)
	runStart, prev := dirty[0], dirty[0]
	emitRun := func(end int64) {
		c.stat.DeviceWrites++
		c.stat.FlushedPages += int(end - runStart + 1)
		c.emit(IO{TimeUS: now, Op: trace.OpWrite,
			Offset: runStart * PageSize, Size: int32((end - runStart + 1) * PageSize)})
	}
	for _, p := range dirty[1:] {
		if p != prev+1 {
			emitRun(prev)
			runStart = p
		}
		prev = p
	}
	emitRun(prev)
}

// FlushAll forces a final write-back (unmount semantics).
func (c *Cache) FlushAll(now int64) {
	c.lastFlush = now - c.cfg.FlushIntervalUS
	c.maybeFlush(now)
}

// Filter replays an application IO stream through a fresh cache and returns
// the EBS-visible stream plus the cache statistics.
func Filter(cfg Config, app []IO) ([]IO, Stats) {
	var out []IO
	c := New(cfg, func(io IO) { out = append(out, io) })
	var last int64
	for _, io := range app {
		c.Access(io)
		last = io.TimeUS
	}
	c.FlushAll(last + cfg.FlushIntervalUS)
	return out, c.Stats()
}

// sortInt64 is an insertion-free small wrapper around sort for int64s.
func sortInt64(xs []int64) {
	// Simple shell sort: dirty sets are small and nearly sorted.
	for gap := len(xs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(xs); i++ {
			for j := i; j >= gap && xs[j-gap] > xs[j]; j -= gap {
				xs[j-gap], xs[j] = xs[j], xs[j-gap]
			}
		}
	}
}
