package guestcache

import (
	"math/rand"
	"testing"

	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

func collect(cfg Config) (*Cache, *[]IO) {
	out := &[]IO{}
	c := New(cfg, func(io IO) { *out = append(*out, io) })
	return c, out
}

func TestRepeatedReadsAbsorbed(t *testing.T) {
	c, out := collect(Config{CachePages: 1024, FlushIntervalUS: 1e9})
	for i := 0; i < 10; i++ {
		c.Access(IO{TimeUS: int64(i), Op: trace.OpRead, Offset: 0, Size: int32(PageSize)})
	}
	if len(*out) != 1 {
		t.Fatalf("device saw %d reads, want 1 (first miss)", len(*out))
	}
	s := c.Stats()
	if s.ReadHits != 9 || s.DeviceReads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReadMissCoalescing(t *testing.T) {
	c, out := collect(Config{CachePages: 1024, FlushIntervalUS: 1e9})
	// Pre-warm page 1 of a 4-page read: device should see two reads (page 0
	// and pages 2-3).
	c.Access(IO{TimeUS: 0, Op: trace.OpRead, Offset: PageSize, Size: int32(PageSize)})
	*out = nil
	c.Access(IO{TimeUS: 1, Op: trace.OpRead, Offset: 0, Size: int32(4 * PageSize)})
	if len(*out) != 2 {
		t.Fatalf("device reads = %d, want 2", len(*out))
	}
	if (*out)[0].Offset != 0 || (*out)[0].Size != int32(PageSize) {
		t.Fatalf("first miss = %+v", (*out)[0])
	}
	if (*out)[1].Offset != 2*PageSize || (*out)[1].Size != int32(2*PageSize) {
		t.Fatalf("second miss = %+v", (*out)[1])
	}
}

func TestWriteBackDefersAndCoalesces(t *testing.T) {
	c, out := collect(Config{CachePages: 1024, FlushIntervalUS: 1000})
	// Dirty pages 0,1,2 and 10 within one flush interval.
	for _, p := range []int64{0, 1, 2, 10} {
		c.Access(IO{TimeUS: 1, Op: trace.OpWrite, Offset: p * PageSize, Size: int32(PageSize)})
	}
	if len(*out) != 0 {
		t.Fatalf("write-back emitted early: %d IOs", len(*out))
	}
	// Next access after the interval triggers the flusher.
	c.Access(IO{TimeUS: 2000, Op: trace.OpRead, Offset: 100 * PageSize, Size: int32(PageSize)})
	var writes []IO
	for _, io := range *out {
		if io.Op == trace.OpWrite {
			writes = append(writes, io)
		}
	}
	if len(writes) != 2 {
		t.Fatalf("flush writes = %d, want 2 coalesced runs", len(writes))
	}
	if writes[0].Offset != 0 || writes[0].Size != int32(3*PageSize) {
		t.Fatalf("first run = %+v", writes[0])
	}
	if writes[1].Offset != 10*PageSize || writes[1].Size != int32(PageSize) {
		t.Fatalf("second run = %+v", writes[1])
	}
}

func TestEvictionFlushesDirtyPage(t *testing.T) {
	c, out := collect(Config{CachePages: 2, FlushIntervalUS: 1e9})
	c.Access(IO{TimeUS: 1, Op: trace.OpWrite, Offset: 0, Size: int32(PageSize)})
	c.Access(IO{TimeUS: 2, Op: trace.OpWrite, Offset: PageSize, Size: int32(PageSize)})
	c.Access(IO{TimeUS: 3, Op: trace.OpWrite, Offset: 2 * PageSize, Size: int32(PageSize)}) // evicts page 0
	found := false
	for _, io := range *out {
		if io.Op == trace.OpWrite && io.Offset == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("evicted dirty page was not flushed")
	}
	if c.Stats().EvictionFlushedPages == 0 {
		t.Fatal("eviction flush not counted")
	}
}

func TestWriteThrough(t *testing.T) {
	c, out := collect(Config{CachePages: 16, FlushIntervalUS: 1e9, WriteThrough: true})
	c.Access(IO{TimeUS: 1, Op: trace.OpWrite, Offset: 0, Size: int32(PageSize)})
	if len(*out) != 1 || (*out)[0].Op != trace.OpWrite {
		t.Fatalf("write-through emitted %+v", *out)
	}
	// The written page is cached clean: a read hits.
	*out = nil
	c.Access(IO{TimeUS: 2, Op: trace.OpRead, Offset: 0, Size: int32(PageSize)})
	if len(*out) != 0 {
		t.Fatal("read after write-through missed")
	}
}

func TestFlushAll(t *testing.T) {
	app := []IO{
		{TimeUS: 1, Op: trace.OpWrite, Offset: 0, Size: int32(PageSize)},
	}
	out, st := Filter(Config{CachePages: 16, FlushIntervalUS: 1e9}, app)
	if len(out) != 1 || out[0].Op != trace.OpWrite {
		t.Fatalf("FlushAll did not write back: %+v", out)
	}
	if st.FlushedPages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFilterMakesEBSVisibleHotBlocksWriteDominant(t *testing.T) {
	// The §7.2 mechanism: an app hammering a hot range with reads and
	// writes looks read-heavy at the application, but the page cache
	// absorbs the re-reads, so the device-visible stream is write-dominant.
	rng := rand.New(rand.NewSource(2))
	hotPages := int64(512) // 2 MiB hot range, fits in cache
	var app []IO
	var appR, appW float64
	for i := 0; i < 30000; i++ {
		io := IO{TimeUS: int64(i) * 200}
		if rng.Float64() < 0.7 {
			io.Op = trace.OpRead
			appR++
		} else {
			io.Op = trace.OpWrite
			appW++
		}
		io.Offset = rng.Int63n(hotPages) * PageSize
		io.Size = int32(PageSize)
		app = append(app, io)
	}
	appRatio := stats.WrRatio(appW, appR)
	out, st := Filter(Config{CachePages: 4096, FlushIntervalUS: 1_000_000}, app)
	var devRBytes, devWBytes, devWIOs float64
	for _, io := range out {
		if io.Op == trace.OpRead {
			devRBytes += float64(io.Size)
		} else {
			devWBytes += float64(io.Size)
			devWIOs++
		}
	}
	// Throughput-based wr_ratio, like the paper's Equation 2 on bytes.
	devRatio := stats.WrRatio(devWBytes, devRBytes)
	if !(appRatio < 0) {
		t.Fatalf("app stream should be read-dominant, wr_ratio %v", appRatio)
	}
	if !(devRatio > 1.0/3) {
		t.Fatalf("device stream should be write-dominant by bytes, wr_ratio %v", devRatio)
	}
	if st.ReadHits == 0 {
		t.Fatal("no read hits in a memory-resident hot set")
	}
	// Flush coalescing means far fewer device write IOs than app writes.
	if !(devWIOs < appW/2) {
		t.Fatalf("device write IOs %v not well below app writes %v", devWIOs, appW)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-page cache accepted")
		}
	}()
	New(Config{CachePages: 0}, func(IO) {})
}

func TestSortInt64(t *testing.T) {
	xs := []int64{5, 1, 4, 1, 3}
	sortInt64(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}
