package invariant

import (
	"ebslab/internal/throttle"
)

// CheckThrottle replays a throttle group in audited mode and folds any
// broken grant laws into rep: delivered traffic never exceeds the effective
// cap, backlogs and queueing delays stay within the 4-second bound, and the
// per-VD throttled-second tallies sum to the group total.
func CheckThrottle(rep *Report, caps []throttle.Caps, demand [][]throttle.Demand) throttle.Result {
	res, msgs := throttle.SimulateAudited(caps, demand)
	rep.AddAll("throttle/grants", msgs)
	return res
}

// CheckThrottleLending is CheckThrottle with the Appendix B lending
// mitigation enabled; the audit additionally asserts that lending only
// redistributes budget — summed effective caps never exceed summed nominal
// caps in either dimension.
func CheckThrottleLending(rep *Report, caps []throttle.Caps, demand [][]throttle.Demand, lend throttle.Lending) throttle.Result {
	res, msgs := throttle.SimulateWithLendingAudited(caps, demand, lend)
	rep.AddAll("throttle/grants", msgs)
	return res
}
