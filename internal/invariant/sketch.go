package invariant

import (
	"ebslab/internal/sketch"
)

// CheckSketchConservation is the streaming path's conservation law: the
// merged sketch set's exact ingest totals must equal the sum of the
// per-shard totals (Merge neither drops nor duplicates work), and — when
// the workload layer's ground-truth Emission is available — must also equal
// what the generator emitted, IO for IO and byte for byte.
func CheckSketchConservation(rep *Report, merged *sketch.Set, shards []sketch.Totals, em *Emission) {
	const law = "sketch/conservation"
	var sum sketch.Totals
	for _, t := range shards {
		sum.Add(t)
	}
	got := merged.Totals()
	if got != sum {
		rep.Addf(law, "merged sketch totals %+v != summed per-shard ingest %+v", got, sum)
	}
	if em == nil {
		return
	}
	t := em.Total()
	if int64(got.IOs) != t.Events {
		rep.Addf(law, "sketch ingested %d IOs, workload emitted %d", got.IOs, t.Events)
	}
	if wantBytes := t.ReadBytes + t.WriteBytes; int64(got.Bytes) != wantBytes {
		rep.Addf(law, "sketch ingested %d bytes, workload emitted %d", got.Bytes, wantBytes)
	}
}

// CheckSketchDeterminism is the streaming twin of CheckDeterminism: it
// invokes run once per worker count and asserts every merged sketch set
// fingerprints identically to the first. Sketch state must be a pure
// function of the simulated IO multiset, so any divergence means a shard
// combine leaked scheduling order into the summaries.
func CheckSketchDeterminism(rep *Report, run func(workers int) (*sketch.Set, error), workerCounts ...int) {
	const law = "determinism/sketch"
	if len(workerCounts) < 2 {
		rep.Addf(law, "need at least two worker counts to compare, got %d", len(workerCounts))
		return
	}
	var ref string
	for i, w := range workerCounts {
		set, err := run(w)
		if err != nil {
			rep.Addf(law, "run with %d workers failed: %v", w, err)
			return
		}
		fp := set.Fingerprint()
		if i == 0 {
			ref = fp
			continue
		}
		if fp != ref {
			rep.Addf(law, "sketch state with %d workers diverges from %d workers (%s != %s)",
				w, workerCounts[0], fp[:12], ref[:12])
		}
	}
}
