package invariant

import (
	"strings"
	"testing"

	"ebslab/internal/balancer"
	"ebslab/internal/cache"
	"ebslab/internal/cluster"
	"ebslab/internal/throttle"
)

func TestReportSuppression(t *testing.T) {
	rep := &Report{}
	for i := 0; i < maxPerLaw+5; i++ {
		rep.Addf("law/a", "violation %d", i)
	}
	rep.Addf("law/b", "different law still reported")
	if len(rep.Violations) != maxPerLaw+1 {
		t.Fatalf("retained %d violations, want %d", len(rep.Violations), maxPerLaw+1)
	}
	if rep.OK() {
		t.Fatal("report with violations claims OK")
	}
	s := rep.String()
	if !strings.Contains(s, "suppressed") || !strings.Contains(s, "law/b") {
		t.Errorf("render missing suppression note or second law:\n%s", s)
	}
	if err := rep.Err(); err == nil {
		t.Fatal("Err() nil on violated report")
	}
}

func TestReportCleanRendersOK(t *testing.T) {
	rep := &Report{}
	if !rep.OK() || rep.Err() != nil {
		t.Fatal("zero report not clean")
	}
	if got := rep.String(); got != "all invariants hold" {
		t.Errorf("clean render %q", got)
	}
}

func TestSuiteNamesAndPluggability(t *testing.T) {
	s := DefaultSuite()
	names := s.Names()
	want := []string{
		"trace/integrity", "trace/canonical-order", "metric/row-sanity",
		"conserve/compute-vs-storage", "conserve/workload",
	}
	if len(names) != len(want) {
		t.Fatalf("default suite has %d checkers, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("checker %d = %q, want %q", i, names[i], want[i])
		}
	}
	s.Add(extraChecker{})
	if n := s.Names(); n[len(n)-1] != "extra" {
		t.Error("Add did not append the plug-in checker")
	}
}

type extraChecker struct{}

func (extraChecker) Name() string              { return "extra" }
func (extraChecker) Check(*Artifacts, *Report) {}

// --- throttle --------------------------------------------------------------

func TestCheckThrottleClean(t *testing.T) {
	caps := []throttle.Caps{{Tput: 1000, IOPS: 10}, {Tput: 500, IOPS: 5}}
	demand := [][]throttle.Demand{
		{{WriteBps: 2000, WriteIOPS: 4}, {WriteBps: 200, WriteIOPS: 1}, {}},
		{{ReadBps: 100, ReadIOPS: 1}, {ReadBps: 900, ReadIOPS: 9}, {}},
	}
	rep := &Report{}
	res := CheckThrottle(rep, caps, demand)
	if !rep.OK() {
		t.Fatalf("throttle audit flagged a healthy group:\n%s", rep.String())
	}
	if res.TotalThrottledSecs == 0 {
		t.Error("expected throttling with demand over cap")
	}
}

func TestCheckThrottleLendingClean(t *testing.T) {
	caps := []throttle.Caps{{Tput: 1000, IOPS: 100}, {Tput: 1000, IOPS: 100}, {Tput: 1000, IOPS: 100}}
	demand := make([][]throttle.Demand, 3)
	for vd := range demand {
		demand[vd] = make([]throttle.Demand, 30)
		for s := range demand[vd] {
			if vd == 0 {
				demand[vd][s] = throttle.Demand{WriteBps: 2500, WriteIOPS: 50}
			} else {
				demand[vd][s] = throttle.Demand{WriteBps: 100, WriteIOPS: 10}
			}
		}
	}
	rep := &Report{}
	CheckThrottleLending(rep, caps, demand, throttle.Lending{Rate: 0.5, PeriodSec: 10})
	if !rep.OK() {
		t.Fatalf("lending audit flagged a healthy group:\n%s", rep.String())
	}
}

// --- cache -----------------------------------------------------------------

func TestSimulateCheckedCleanPolicies(t *testing.T) {
	var accesses []cache.Access
	for i := 0; i < 500; i++ {
		off := int64(i%37) * cache.PageSize
		accesses = append(accesses, cache.Access{Offset: off, Size: int32(cache.PageSize) * int32(1+i%3)})
	}
	for _, c := range []cache.Cache{cache.NewFIFO(16), cache.NewLRU(16), cache.NewFrozen(0, 16*cache.PageSize)} {
		rep := &Report{}
		res := SimulateChecked(rep, c, accesses)
		if !rep.OK() {
			t.Errorf("%s: audit flagged a healthy policy:\n%s", c.Name(), rep.String())
		}
		if res.PageTotal == 0 {
			t.Errorf("%s: no page touches counted", c.Name())
		}
	}
}

// leakyCache violates the capacity law: it admits without evicting.
type leakyCache struct{ set map[int64]bool }

func (c *leakyCache) Name() string  { return "leaky" }
func (c *leakyCache) Len() int      { return len(c.set) }
func (c *leakyCache) Capacity() int { return 4 }
func (c *leakyCache) Touch(page int64, _ bool) bool {
	if c.set[page] {
		return true
	}
	c.set[page] = true
	return false
}

func TestSimulateCheckedCatchesCapacityLeak(t *testing.T) {
	var accesses []cache.Access
	for i := 0; i < 32; i++ {
		accesses = append(accesses, cache.Access{Offset: int64(i) * cache.PageSize, Size: int32(cache.PageSize)})
	}
	rep := &Report{}
	SimulateChecked(rep, &leakyCache{set: map[int64]bool{}}, accesses)
	if rep.OK() {
		t.Fatal("capacity-violating cache passed the audit")
	}
}

// --- balancer --------------------------------------------------------------

// hotTraffic builds a segment/period matrix with one persistently hot BS so
// the balancer actually migrates.
func hotTraffic(nSegs, nPeriods int) [][]balancer.RW {
	m := make([][]balancer.RW, nSegs)
	for s := range m {
		m[s] = make([]balancer.RW, nPeriods)
		for p := range m[s] {
			w := 10.0
			if s < 4 {
				w = 400 + 50*float64(s)
			}
			m[s][p] = balancer.RW{W: w, R: 5 * float64(1+s%3)}
		}
	}
	return m
}

func balancerScenario() (*cluster.SegmentMap, [][]balancer.RW, balancer.Result) {
	const nSegs, nBS, nPeriods = 24, 4, 6
	seg2bs := cluster.NewSegmentMap(nSegs, nBS)
	for s := 0; s < nSegs; s++ {
		bs := cluster.StorageNodeID(0)
		if s >= 4 {
			bs = cluster.StorageNodeID(s % nBS)
		}
		seg2bs.Assign(cluster.SegmentID(s), bs)
	}
	traffic := hotTraffic(nSegs, nPeriods)
	res := balancer.Run(seg2bs, traffic, balancer.MinTrafficPolicy{}, balancer.DefaultConfig())
	return seg2bs, traffic, res
}

func TestCheckBalancerClean(t *testing.T) {
	seg2bs, traffic, res := balancerScenario()
	if len(res.Migrations) == 0 {
		t.Fatal("scenario produced no migrations; the replay check is vacuous")
	}
	rep := &Report{}
	CheckBalancer(rep, seg2bs, traffic, &res)
	if !rep.OK() {
		t.Fatalf("balancer replay flagged a healthy run:\n%s", rep.String())
	}
}

func TestCheckBalancerCatchesPhantomMigration(t *testing.T) {
	seg2bs, traffic, res := balancerScenario()
	// Claim a segment moved from a BS that never hosted it.
	res.Migrations[0].From++
	rep := &Report{}
	CheckBalancer(rep, seg2bs, traffic, &res)
	if rep.OK() {
		t.Fatal("phantom migration passed the replay check")
	}
}

func TestCheckBalancerCatchesDroppedMigration(t *testing.T) {
	seg2bs, traffic, res := balancerScenario()
	// Losing a migration desynchronizes the replayed placement, so later
	// periods' CoVs (or later moves' From fields) stop matching.
	res.Migrations = res.Migrations[1:]
	rep := &Report{}
	CheckBalancer(rep, seg2bs, traffic, &res)
	if rep.OK() {
		t.Fatal("dropped migration passed the replay check")
	}
}

func TestCheckBalancerCatchesForgedCoV(t *testing.T) {
	seg2bs, traffic, res := balancerScenario()
	res.WriteCoV[len(res.WriteCoV)-1] *= 1.5
	rep := &Report{}
	CheckBalancer(rep, seg2bs, traffic, &res)
	if rep.OK() {
		t.Fatal("forged CoV passed the replay check")
	}
}
