package invariant

// ShardLedger is the fabric coordinator's dispatch/result accounting for one
// distributed run, expressed in plain integers so the law has no dependency
// on the fabric package (and the fabric can depend on invariant). Index i
// describes shard i of the plan.
type ShardLedger struct {
	// Dispatched counts how many times shard i was handed to a worker
	// (> 1 means speculation or dead-worker reassignment).
	Dispatched []int
	// Accepted counts how many of shard i's returned results were folded
	// into the merge. At-most-once accounting requires exactly one.
	Accepted []int
	// Returned counts how many results for shard i came back at all;
	// Returned - Accepted results were dropped as duplicates.
	Returned []int
}

// CheckFabricAccounting is the cross-process conservation law of the
// distributed fabric: every shard of the plan was dispatched at least once,
// exactly one result per shard was accepted into the merge (at-most-once),
// nothing was accepted that was never dispatched or never returned, and a
// shard's dispatch count bounds its returned results (a worker cannot return
// a shard it was never assigned).
func CheckFabricAccounting(rep *Report, l *ShardLedger) {
	const law = "fabric/accounting"
	if len(l.Accepted) != len(l.Dispatched) || len(l.Returned) != len(l.Dispatched) {
		rep.Addf(law, "ledger shape mismatch: %d dispatched / %d returned / %d accepted slots",
			len(l.Dispatched), len(l.Returned), len(l.Accepted))
		return
	}
	for i := range l.Dispatched {
		d, r, a := l.Dispatched[i], l.Returned[i], l.Accepted[i]
		if d < 1 {
			rep.Addf(law, "shard %d was never dispatched", i)
		}
		if a != 1 {
			rep.Addf(law, "shard %d accepted %d results, want exactly 1", i, a)
		}
		if a > r {
			rep.Addf(law, "shard %d accepted %d results but only %d returned", i, a, r)
		}
		if r > d {
			rep.Addf(law, "shard %d returned %d results from %d dispatches", i, r, d)
		}
	}
}

// LeaderTransition records one leadership establishment in the fabric's
// replicated control plane: replica Leader won (or bootstrapped) the
// election for Term. The coordinator replica set appends one entry per
// local election win, so the slice is the run's leadership history.
type LeaderTransition struct {
	Term   uint64
	Leader int
}

// CheckLeadershipContinuity is the control-plane election-safety law over a
// run's leadership history: some leader must have been established, terms
// must start at >= 1 and strictly increase (Raft's at-most-one-leader-per-
// term guarantee, observed end to end), and every leader must name a real
// replica.
func CheckLeadershipContinuity(rep *Report, replicas int, history []LeaderTransition) {
	const law = "consensus/leadership"
	if len(history) == 0 {
		rep.Addf(law, "no leader was ever established")
		return
	}
	var prev uint64
	for i, tr := range history {
		if tr.Term < 1 {
			rep.Addf(law, "transition %d has term %d, want >= 1", i, tr.Term)
		}
		if tr.Term <= prev {
			rep.Addf(law, "transition %d: term %d does not increase past %d (two leaders in one term?)",
				i, tr.Term, prev)
		}
		prev = tr.Term
		if tr.Leader < 0 || tr.Leader >= replicas {
			rep.Addf(law, "transition %d names leader %d outside the %d-replica set", i, tr.Leader, replicas)
		}
	}
}

// MergeEmissions folds VD-disjoint shard emissions into dst: slot vd of src
// overwrites slot vd of dst when src counted that disk. Shards own disjoint
// VD ranges, so a non-zero slot has exactly one writer; a collision (both
// sides non-zero) is reported through the returned flag so callers can fail
// the merge rather than double-count.
func MergeEmissions(dst, src *Emission) (collision bool) {
	for vd := range src.PerVD {
		s := &src.PerVD[vd]
		if s.Events == 0 {
			continue
		}
		if dst.PerVD[vd].Events != 0 {
			collision = true
			continue
		}
		dst.PerVD[vd] = *s
	}
	return collision
}
