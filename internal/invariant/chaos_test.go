package invariant

import (
	"strings"
	"testing"

	"ebslab/internal/chaos"
)

func chaosTestSchedule() (*chaos.Plan, *chaos.Schedule) {
	plan := &chaos.Plan{BSCrashes: 4, Storms: 3, MeanDownSec: 5, MeanStormSec: 5, Recoverable: true}
	return plan, planExpand(plan)
}

func planExpand(p *chaos.Plan) *chaos.Schedule {
	return p.Expand(11, chaos.Shape{BSs: 6, VDs: 18, DurSec: 40})
}

func TestCheckChaosScheduleCleanPass(t *testing.T) {
	plan, sched := chaosTestSchedule()
	var rep Report
	CheckChaosSchedule(&rep, plan, 11, sched)
	if !rep.OK() {
		t.Fatalf("clean schedule flagged: %v", rep.Err())
	}
}

func TestCheckChaosScheduleFlagsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(s *chaos.Schedule)
		frag    string
	}{
		{"inverted window", func(s *chaos.Schedule) { s.Crashes[0].End = s.Crashes[0].Start }, "malformed"},
		{"BS out of range", func(s *chaos.Schedule) { s.Crashes[1].BS = s.Shape.BSs }, "outside fleet"},
		{"VD out of range", func(s *chaos.Schedule) { s.Storms[0].VD = -1 }, "outside fleet"},
		{"storm factor zero", func(s *chaos.Schedule) { s.Storms[0].Factor = 0 }, "not positive"},
		{"crash order broken", func(s *chaos.Schedule) {
			s.Crashes[0], s.Crashes[len(s.Crashes)-1] = s.Crashes[len(s.Crashes)-1], s.Crashes[0]
		}, "out of Start order"},
		{"penalty smuggled in", func(s *chaos.Schedule) { s.PenaltyUS = 1 }, "re-expansion diverges"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, sched := chaosTestSchedule()
			tc.corrupt(sched)
			var rep Report
			CheckChaosSchedule(&rep, plan, 11, sched)
			err := rep.Err()
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("corruption missed: err = %v, want mention of %q", err, tc.frag)
			}
		})
	}
}

func TestCheckChaosScheduleNilAndInvalidPlan(t *testing.T) {
	var rep Report
	CheckChaosSchedule(&rep, nil, 1, nil)
	if rep.OK() {
		t.Fatal("nil inputs passed")
	}
	bad := &chaos.Plan{Net: chaos.NetFaults{DropRate: 2}}
	rep = Report{}
	CheckChaosSchedule(&rep, bad, 1, planExpand(&chaos.Plan{BSCrashes: 1}))
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "plan invalid") {
		t.Fatalf("invalid plan missed: %v", err)
	}
}

func TestCheckChaosNeutrality(t *testing.T) {
	neutral := planExpand(&chaos.Plan{BSCrashes: 3, MeanDownSec: 4, Recoverable: true})
	if !neutral.DatasetNeutral() {
		t.Fatal("fixture schedule is not neutral")
	}
	var rep Report
	CheckChaosNeutrality(&rep, neutral, "fp-a", "fp-a")
	if !rep.OK() {
		t.Fatalf("matching fingerprints flagged: %v", rep.Err())
	}
	rep = Report{}
	CheckChaosNeutrality(&rep, neutral, "fp-a", "fp-b")
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "perturbed") {
		t.Fatalf("neutrality breach missed: %v", err)
	}
	// A disruptive schedule asserts nothing: fingerprints may differ freely.
	disruptive := planExpand(&chaos.Plan{BSCrashes: 2, Storms: 2, Recoverable: true})
	if disruptive.DatasetNeutral() {
		t.Fatal("storm schedule claimed neutrality")
	}
	rep = Report{}
	CheckChaosNeutrality(&rep, disruptive, "fp-a", "fp-b")
	if !rep.OK() {
		t.Fatalf("disruptive schedule flagged by the neutrality law: %v", rep.Err())
	}
	rep = Report{}
	CheckChaosNeutrality(&rep, nil, "x", "x")
	if rep.OK() {
		t.Fatal("nil schedule passed")
	}
}
