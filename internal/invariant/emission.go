package invariant

import (
	"context"
	"fmt"

	"ebslab/internal/cluster"
	"ebslab/internal/par"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// VDEmission is the ground-truth IO accounting of one virtual disk at the
// workload layer: what the generator emitted before any downstream layer
// touched it. All counters are exact integers, so comparisons against
// metric-row sums (integer-valued float64s) are exact.
type VDEmission struct {
	Events     int64
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
}

// Emission is the per-VD workload-layer accounting of one run.
type Emission struct {
	PerVD []VDEmission
}

// NewEmission allocates accounting for nVDs disks.
func NewEmission(nVDs int) *Emission {
	return &Emission{PerVD: make([]VDEmission, nVDs)}
}

// Add records one emitted IO. It is not safe for concurrent use on the same
// VD slot; the engine's shards each own disjoint VD slots, so per-slot
// single-writer discipline makes fleet-wide counting race-free.
func (e *Emission) Add(vd cluster.VDID, op trace.Op, size int32) {
	s := &e.PerVD[vd]
	s.Events++
	if op == trace.OpRead {
		s.ReadOps++
		s.ReadBytes += int64(size)
	} else {
		s.WriteOps++
		s.WriteBytes += int64(size)
	}
}

// Total sums the per-VD accounting.
func (e *Emission) Total() VDEmission {
	var t VDEmission
	for i := range e.PerVD {
		s := &e.PerVD[i]
		t.Events += s.Events
		t.ReadOps += s.ReadOps
		t.WriteOps += s.WriteOps
		t.ReadBytes += s.ReadBytes
		t.WriteBytes += s.WriteBytes
	}
	return t
}

// CountEmission independently replays the workload generator for the first
// nVDs disks and returns the ground-truth accounting. Because the generator
// is deterministic per (seed, VD), this recount is exactly what the engine
// must have seen — any divergence from the dataset is a conservation bug in
// the engine or the merge, not noise. Disks are recounted in parallel
// across the worker pool (0 = one per CPU).
func CountEmission(ctx context.Context, f *workload.Fleet, nVDs, durSec, eventSampleEvery, workers int) (*Emission, error) {
	if nVDs < 0 || nVDs > len(f.Topology.VDs) {
		return nil, fmt.Errorf("invariant: nVDs %d outside [0, %d]", nVDs, len(f.Topology.VDs))
	}
	if eventSampleEvery < 1 {
		eventSampleEvery = 1
	}
	em := NewEmission(len(f.Topology.VDs))
	err := par.ForEach(ctx, nVDs, workers, func(vdIdx int) error {
		f.GenEvents(cluster.VDID(vdIdx), durSec, eventSampleEvery, func(ev workload.Event) {
			em.Add(cluster.VDID(vdIdx), ev.Op, ev.Size)
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return em, nil
}
