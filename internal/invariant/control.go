package invariant

import (
	"math"

	"ebslab/internal/cluster"
	"ebslab/internal/control"
	"ebslab/internal/throttle"
)

// CheckControlActuation holds a control plan's decision log and its compiled
// timeline to the actuation conservation laws:
//
//   - decision epochs are nondecreasing and inside (0, epochs) — the
//     controller cannot act in the epoch it is still observing;
//   - every migrate/evacuate decision maps to exactly one applied-migration
//     entry (joined on epoch, AtSec, segment, endpoints, failover flag), and
//     there is no applied action without a decision;
//   - replaying the decisions against the base placement reproduces every
//     non-nil timeline placement row exactly — and a nil row implies no
//     migration had landed yet (no action without a decision, again);
//   - the per-epoch moved bitset marks exactly the decided segments;
//   - lending conserves: each epoch's summed cap deltas never exceed zero in
//     either dimension, the timeline's lend rows equal the decided deltas,
//     and no VD's effective cap goes negative;
//   - rebind decisions replay to every non-nil binding row.
func CheckControlActuation(rep *Report, plan *control.Plan, base *cluster.SegmentMap, binding []int8, caps []throttle.Caps) {
	const law = "conserve/control"
	tl := plan.Timeline
	if tl == nil {
		rep.Addf(law, "plan has no timeline")
		return
	}
	nEpochs := tl.Epochs()
	nSeg := base.Len()
	const tol = 1e-9

	// Epoch monotonicity over the whole log.
	for i := 1; i < len(plan.Decisions); i++ {
		if plan.Decisions[i].Epoch < plan.Decisions[i-1].Epoch {
			rep.Addf(law, "decision %d (epoch %d) logged after epoch %d", i, plan.Decisions[i].Epoch, plan.Decisions[i-1].Epoch)
			return
		}
	}

	placement := base.Clone()
	bind := append([]int8(nil), binding...)
	applied := plan.Applied
	decIdx := 0
	anyMove, anyRebind := false, false

	for ep := 1; ep < nEpochs; ep++ {
		movedNow := make(map[int]bool)
		lendT := make(map[int]float64)
		lendI := make(map[int]float64)
		var sumT, sumI, magT, magI float64

		for decIdx < len(plan.Decisions) && plan.Decisions[decIdx].Epoch == ep {
			d := plan.Decisions[decIdx]
			decIdx++
			switch d.Kind {
			case control.DecMigrate, control.DecEvacuate:
				if d.Seg < 0 || d.Seg >= nSeg {
					rep.Addf(law, "epoch %d: decision moves unknown segment %d", ep, d.Seg)
					continue
				}
				if got := placement.BSOf(cluster.SegmentID(d.Seg)); int(got) != d.From {
					rep.Addf(law, "epoch %d: decision claims segment %d on BS %d, replay has it on %d", ep, d.Seg, d.From, got)
				}
				if d.To < 0 || d.To >= placement.NumBS() || d.To == d.From {
					rep.Addf(law, "epoch %d: segment %d decided onto invalid BS %d (from %d)", ep, d.Seg, d.To, d.From)
					continue
				}
				if len(applied) == 0 {
					rep.Addf(law, "epoch %d: decision to move segment %d has no applied-migration entry", ep, d.Seg)
					continue
				}
				m := applied[0]
				applied = applied[1:]
				if m.Period != ep || m.AtSec != ep*tl.EpochSec || int(m.Seg) != d.Seg ||
					int(m.From) != d.From || int(m.To) != d.To || m.Failover != (d.Kind == control.DecEvacuate) {
					rep.Addf(law, "epoch %d: decision (%s seg %d %d→%d) does not join applied entry (period %d @%ds seg %d %d→%d failover=%v)",
						ep, d.Kind, d.Seg, d.From, d.To, m.Period, m.AtSec, m.Seg, m.From, m.To, m.Failover)
				}
				placement.Move(cluster.SegmentID(d.Seg), cluster.StorageNodeID(d.To))
				movedNow[d.Seg] = true
				anyMove = true
			case control.DecLend:
				if d.VD < 0 || d.VD >= len(caps) {
					rep.Addf(law, "epoch %d: lending decision for unknown VD %d", ep, d.VD)
					continue
				}
				lendT[d.VD] += d.TputDelta
				lendI[d.VD] += d.IOPSDelta
				sumT += d.TputDelta
				sumI += d.IOPSDelta
				magT += math.Abs(d.TputDelta)
				magI += math.Abs(d.IOPSDelta)
				if caps[d.VD].Tput+d.TputDelta < -tol || caps[d.VD].IOPS+d.IOPSDelta < -tol {
					rep.Addf(law, "epoch %d: VD %d lending delta (%v B/s, %v IOPS) drives its cap (%v, %v) negative",
						ep, d.VD, d.TputDelta, d.IOPSDelta, caps[d.VD].Tput, caps[d.VD].IOPS)
				}
			case control.DecRebind:
				if d.QP < 0 || d.QP >= len(bind) || d.WT < 0 || d.WT > 127 {
					rep.Addf(law, "epoch %d: rebind of QP %d to WT %d out of range", ep, d.QP, d.WT)
					continue
				}
				bind[d.QP] = int8(d.WT)
				anyRebind = true
			default:
				rep.Addf(law, "epoch %d: unknown decision kind %d", ep, d.Kind)
			}
		}

		// Grants must never mint capacity: the fleet-wide sum of each
		// epoch's deltas is at most zero (borrowed cap is debited somewhere).
		if sumT > tol*(1+magT) {
			rep.Addf(law, "epoch %d: throughput lending mints %v B/s of cap", ep, sumT)
		}
		if sumI > tol*(1+magI) {
			rep.Addf(law, "epoch %d: IOPS lending mints %v ops/s of cap", ep, sumI)
		}

		// Timeline rows must be exactly the decisions, no more, no less.
		if row := tl.BSRow(ep); row != nil {
			for seg := 0; seg < nSeg; seg++ {
				if row[seg] != placement.BSOf(cluster.SegmentID(seg)) {
					rep.Addf(law, "epoch %d: timeline places segment %d on BS %d, decision replay on %d",
						ep, seg, row[seg], placement.BSOf(cluster.SegmentID(seg)))
					break
				}
			}
		} else if anyMove {
			rep.Addf(law, "epoch %d: migrations have landed but the timeline placement row is nil", ep)
		}
		for seg := 0; seg < nSeg; seg++ {
			if tl.MovedAt(ep, seg) != movedNow[seg] {
				rep.Addf(law, "epoch %d: moved bitset says %v for segment %d, decisions say %v",
					ep, tl.MovedAt(ep, seg), seg, movedNow[seg])
			}
		}
		checkLendRow(rep, law, ep, "throughput", tl.LendTput(ep), lendT, len(caps))
		checkLendRow(rep, law, ep, "IOPS", tl.LendIOPS(ep), lendI, len(caps))
		if row := tl.WTRow(ep); row != nil {
			for qp := range row {
				if row[qp] != bind[qp] {
					rep.Addf(law, "epoch %d: timeline binds QP %d to WT %d, decision replay to %d", ep, qp, row[qp], bind[qp])
					break
				}
			}
		} else if anyRebind {
			rep.Addf(law, "epoch %d: rebinds have landed but the timeline binding row is nil", ep)
		}
	}

	for decIdx < len(plan.Decisions) {
		d := plan.Decisions[decIdx]
		rep.Addf(law, "decision %d targets epoch %d outside (0, %d)", decIdx, d.Epoch, nEpochs)
		decIdx++
	}
	for _, m := range applied {
		rep.Addf(law, "applied migration of segment %d in epoch %d has no decision", m.Seg, m.Period)
	}
}

// checkLendRow compares one epoch's timeline lend row against the deltas the
// decisions decided. A nil row means all-zero.
func checkLendRow(rep *Report, law string, ep int, dim string, row []float64, want map[int]float64, nVDs int) {
	const tol = 1e-9
	for vd := 0; vd < nVDs; vd++ {
		var got float64
		if row != nil {
			got = row[vd]
		}
		if math.Abs(got-want[vd]) > tol*(1+math.Abs(want[vd])) {
			rep.Addf(law, "epoch %d: timeline %s delta for VD %d is %v, decisions say %v", ep, dim, vd, got, want[vd])
		}
	}
}
