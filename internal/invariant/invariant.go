// Package invariant is the simulation's runtime validation subsystem: a
// pluggable set of checkers that assert the cross-layer conservation laws
// the study's conclusions rest on. Every IO emitted by internal/workload
// must be accounted for at the hypervisor (compute-domain metric rows), the
// throttle (grants never exceed the cap-plus-lent budget), the BlockServer
// (storage-domain metric rows), and the cache (hits+misses == accesses);
// shard merging must neither drop nor duplicate work; and replays must be
// byte-identical under differing worker counts and VD permutations.
//
// The engine runs the default suite when ebs.Options.Check is set (the
// `-check` mode of cmd/ebssim); tests compose individual checkers directly.
// A violation is a bug in the simulator, never in the workload: the laws
// hold by construction, so any failure means semantic drift.
package invariant

import (
	"fmt"
	"strings"
)

// Violation is one broken law. Law is a stable slash-separated identifier
// ("conserve/compute-vs-storage"); Msg carries the specifics.
type Violation struct {
	Law string
	Msg string
}

func (v Violation) String() string { return v.Law + ": " + v.Msg }

// maxPerLaw bounds how many violations of one law a report retains, so a
// systemic bug reports its shape without flooding memory.
const maxPerLaw = 8

// Report collects violations across checkers. The zero value is ready to
// use.
type Report struct {
	Violations []Violation
	perLaw     map[string]int
	suppressed int
}

// Addf records one violation of law, suppressing beyond maxPerLaw per law.
func (r *Report) Addf(law, format string, args ...any) {
	if r.perLaw == nil {
		r.perLaw = make(map[string]int)
	}
	r.perLaw[law]++
	if r.perLaw[law] > maxPerLaw {
		r.suppressed++
		return
	}
	r.Violations = append(r.Violations, Violation{Law: law, Msg: fmt.Sprintf(format, args...)})
}

// AddAll records pre-rendered violation messages under one law (used to
// fold audit logs from other packages into a report).
func (r *Report) AddAll(law string, msgs []string) {
	for _, m := range msgs {
		r.Addf(law, "%s", m)
	}
}

// OK reports whether every law held.
func (r *Report) OK() bool { return len(r.Violations) == 0 && r.suppressed == 0 }

// Err returns nil when the report is clean, or an error rendering every
// retained violation.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("invariant: %s", r.String())
}

// String renders the report for logs.
func (r *Report) String() string {
	if r.OK() {
		return "all invariants hold"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violation(s)", len(r.Violations)+r.suppressed)
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if r.suppressed > 0 {
		fmt.Fprintf(&b, "\n  (%d further suppressed)", r.suppressed)
	}
	return b.String()
}

// Checker is one invariant over a simulation run's artifacts. Checkers must
// be pure observers: they may not mutate the artifacts.
type Checker interface {
	// Name identifies the checker in reports and suite listings.
	Name() string
	// Check appends any violations to rep.
	Check(a *Artifacts, rep *Report)
}

// Suite is an ordered collection of checkers run as a unit.
type Suite struct {
	checkers []Checker
}

// NewSuite builds a suite from the given checkers.
func NewSuite(cs ...Checker) *Suite { return &Suite{checkers: cs} }

// Add appends further checkers (the plug-in point for future layers).
func (s *Suite) Add(cs ...Checker) *Suite {
	s.checkers = append(s.checkers, cs...)
	return s
}

// Names lists the suite's checkers in run order.
func (s *Suite) Names() []string {
	out := make([]string, len(s.checkers))
	for i, c := range s.checkers {
		out[i] = c.Name()
	}
	return out
}

// Run executes every checker against the artifacts and returns the combined
// report.
func (s *Suite) Run(a *Artifacts) *Report {
	rep := &Report{}
	for _, c := range s.checkers {
		c.Check(a, rep)
	}
	return rep
}

// DefaultSuite returns the checkers the engine's -check mode runs: trace
// referential integrity, canonical ordering, metric-row sanity, and the
// conservation laws across the compute/storage domains and (when an
// Emission is supplied) against the workload layer itself.
func DefaultSuite() *Suite {
	return NewSuite(
		traceIntegrity{},
		traceCanonical{},
		rowSanity{},
		domainConservation{},
		workloadConservation{},
	)
}

// VerifyRun runs the default suite over the artifacts.
func VerifyRun(a *Artifacts) *Report { return DefaultSuite().Run(a) }
