package invariant

import (
	"math"
	"testing"

	"ebslab/internal/balancer"
	"ebslab/internal/cluster"
	"ebslab/internal/diting"
	"ebslab/internal/throttle"
	"ebslab/internal/trace"
)

// Metamorphic relations: transformations of the input with a known, exact
// effect on the output. They need no oracle values, so they catch semantic
// drift the shape tests cannot. Scale factors are powers of two so float
// arithmetic commutes with the transformation exactly.

// --- throttle --------------------------------------------------------------

func throttleScenario() ([]throttle.Caps, [][]throttle.Demand) {
	caps := []throttle.Caps{{Tput: 1 << 10, IOPS: 1 << 4}, {Tput: 1 << 11, IOPS: 1 << 5}}
	demand := make([][]throttle.Demand, 2)
	for vd := range demand {
		demand[vd] = make([]throttle.Demand, 20)
		for s := range demand[vd] {
			demand[vd][s] = throttle.Demand{
				ReadBps:   float64((s*131 + vd*17) % 3000),
				WriteBps:  float64((s*257 + vd*31) % 2500),
				ReadIOPS:  float64(s % 9),
				WriteIOPS: float64((s + vd) % 31),
			}
		}
	}
	return caps, demand
}

// TestThrottleScaleInvariance: scaling caps and demand by the same power of
// two must leave throttled seconds and queueing delays bit-identical — the
// throttle is a pure ratio machine.
func TestThrottleScaleInvariance(t *testing.T) {
	caps, demand := throttleScenario()
	base := throttle.Simulate(caps, demand)

	const k = 4
	scaledCaps := make([]throttle.Caps, len(caps))
	for i, c := range caps {
		scaledCaps[i] = throttle.Caps{Tput: c.Tput * k, IOPS: c.IOPS * k}
	}
	scaledDemand := make([][]throttle.Demand, len(demand))
	for vd := range demand {
		scaledDemand[vd] = make([]throttle.Demand, len(demand[vd]))
		for s, d := range demand[vd] {
			scaledDemand[vd][s] = throttle.Demand{
				ReadBps: d.ReadBps * k, WriteBps: d.WriteBps * k,
				ReadIOPS: d.ReadIOPS * k, WriteIOPS: d.WriteIOPS * k,
			}
		}
	}
	scaled := throttle.Simulate(scaledCaps, scaledDemand)

	if scaled.TotalThrottledSecs != base.TotalThrottledSecs {
		t.Fatalf("total throttled secs %d != %d under x%d scaling", scaled.TotalThrottledSecs, base.TotalThrottledSecs, k)
	}
	for vd := range base.QueueDelaySec {
		if base.ThrottledSecs[vd] != scaled.ThrottledSecs[vd] {
			t.Errorf("vd %d: throttled secs %d != %d", vd, scaled.ThrottledSecs[vd], base.ThrottledSecs[vd])
		}
		for s := range base.QueueDelaySec[vd] {
			if base.QueueDelaySec[vd][s] != scaled.QueueDelaySec[vd][s] {
				t.Fatalf("vd %d sec %d: delay %v != %v under scaling", vd, s,
					scaled.QueueDelaySec[vd][s], base.QueueDelaySec[vd][s])
			}
		}
	}
}

// TestThrottleReadWriteRelabelInvariance: the caps aggregate reads and
// writes (§5.2), so relabeling every read as a write and vice versa must
// not change throttling at all.
func TestThrottleReadWriteRelabelInvariance(t *testing.T) {
	caps, demand := throttleScenario()
	base := throttle.Simulate(caps, demand)

	swapped := make([][]throttle.Demand, len(demand))
	for vd := range demand {
		swapped[vd] = make([]throttle.Demand, len(demand[vd]))
		for s, d := range demand[vd] {
			swapped[vd][s] = throttle.Demand{
				ReadBps: d.WriteBps, WriteBps: d.ReadBps,
				ReadIOPS: d.WriteIOPS, WriteIOPS: d.ReadIOPS,
			}
		}
	}
	res := throttle.Simulate(caps, swapped)
	if res.TotalThrottledSecs != base.TotalThrottledSecs {
		t.Fatalf("R/W relabel changed throttling: %d != %d", res.TotalThrottledSecs, base.TotalThrottledSecs)
	}
	for vd := range base.QueueDelaySec {
		for s := range base.QueueDelaySec[vd] {
			if base.QueueDelaySec[vd][s] != res.QueueDelaySec[vd][s] {
				t.Fatalf("vd %d sec %d: delay changed under R/W relabel", vd, s)
			}
		}
	}
}

// --- balancer --------------------------------------------------------------

// TestBalancerScaleInvariance: Algorithm 1 thresholds are multiples of the
// cluster average, so scaling all traffic by a power of two must reproduce
// the identical migration log and identical CoVs.
func TestBalancerScaleInvariance(t *testing.T) {
	seg2bs, traffic, base := balancerScenario()
	const k = 8
	scaled := make([][]balancer.RW, len(traffic))
	for s := range traffic {
		scaled[s] = make([]balancer.RW, len(traffic[s]))
		for p, rw := range traffic[s] {
			scaled[s][p] = balancer.RW{R: rw.R * k, W: rw.W * k}
		}
	}
	res := balancer.Run(seg2bs, scaled, balancer.MinTrafficPolicy{}, balancer.DefaultConfig())
	if len(res.Migrations) != len(base.Migrations) {
		t.Fatalf("x%d scaling changed migration count: %d != %d", k, len(res.Migrations), len(base.Migrations))
	}
	for i := range base.Migrations {
		if res.Migrations[i] != base.Migrations[i] {
			t.Fatalf("migration %d differs under scaling: %+v != %+v", i, res.Migrations[i], base.Migrations[i])
		}
	}
	for p := range base.WriteCoV {
		if !eqNaN(res.WriteCoV[p], base.WriteCoV[p]) || !eqNaN(res.ReadCoV[p], base.ReadCoV[p]) {
			t.Fatalf("period %d: CoV changed under scaling", p)
		}
	}
}

// --- diting ----------------------------------------------------------------

// syntheticRecords fabricates nVDs disks' worth of interleaved IOs with the
// engine's per-VD trace-ID stream convention.
func syntheticRecords(nVDs, perVD int) [][]trace.Record {
	out := make([][]trace.Record, nVDs)
	for vd := 0; vd < nVDs; vd++ {
		base := (uint64(vd) + 1) << 40
		for i := 0; i < perVD; i++ {
			op := trace.OpWrite
			if (i+vd)%3 == 0 {
				op = trace.OpRead
			}
			out[vd] = append(out[vd], trace.Record{
				TraceID: base + uint64(i) + 1,
				TimeUS:  int64(i)*50_000 + int64(vd)*7_000,
				Op:      op,
				Size:    4096 * int32(1+i%4),
				Offset:  int64(i%64) * 4096,
				VD:      cluster.VDID(vd),
				QP:      cluster.QPID(vd*2 + i%2),
				Segment: cluster.SegmentID(vd*3 + i%3),
				Storage: cluster.StorageNodeID(vd % 2),
			})
		}
	}
	return out
}

func mergeInOrder(perVD [][]trace.Record, order []int, shardsN int) *diting.Tracer {
	shards := make([]*diting.Tracer, shardsN)
	for i := range shards {
		shards[i] = diting.New(1)
	}
	// Ingest via the columnar batch path with a tiny capacity, so every VD
	// crosses several flush boundaries — exactly the engine's EmitBatch shape.
	batch := trace.NewBatch(7)
	for i, vd := range order {
		sh := shards[i%shardsN]
		for j := range perVD[vd] {
			if batch.Full() {
				sh.EmitBatch(batch)
				batch.Reset()
			}
			batch.Append(&perVD[vd][j])
		}
		sh.EmitBatch(batch)
		batch.Reset()
	}
	return diting.Merge(1, shards...)
}

// TestMergePermutationInvariance: dealing virtual disks to shards in any
// order, across any shard count, must merge to the identical dataset — the
// conservation law behind worker-count determinism.
func TestMergePermutationInvariance(t *testing.T) {
	perVD := syntheticRecords(6, 40)
	ref := mergeInOrder(perVD, []int{0, 1, 2, 3, 4, 5}, 1)
	for _, tc := range []struct {
		order  []int
		shards int
	}{
		{[]int{5, 4, 3, 2, 1, 0}, 1},
		{[]int{2, 0, 4, 1, 5, 3}, 2},
		{[]int{3, 5, 1, 0, 2, 4}, 3},
		{[]int{0, 1, 2, 3, 4, 5}, 6},
	} {
		got := mergeInOrder(perVD, tc.order, tc.shards)
		if a, b := len(got.Records()), len(ref.Records()); a != b {
			t.Fatalf("order %v/%d shards: %d records, want %d", tc.order, tc.shards, a, b)
		}
		for i, rec := range got.Records() {
			if rec != ref.Records()[i] {
				t.Fatalf("order %v/%d shards: record %d differs: %+v != %+v",
					tc.order, tc.shards, i, rec, ref.Records()[i])
			}
		}
		gr, rr := got.ComputeRows(), ref.ComputeRows()
		if len(gr) != len(rr) {
			t.Fatalf("order %v: %d compute rows, want %d", tc.order, len(gr), len(rr))
		}
		for i := range gr {
			if gr[i] != rr[i] {
				t.Fatalf("order %v: compute row %d differs", tc.order, i)
			}
		}
		gs, rs := got.StorageRows(), ref.StorageRows()
		for i := range gs {
			if gs[i] != rs[i] {
				t.Fatalf("order %v: storage row %d differs", tc.order, i)
			}
		}
	}
}

// TestMergePermutationDetectsDroppedVD: the same oracle must convict a
// shard that silently loses a disk — the injected conservation bug.
func TestMergePermutationDetectsDroppedVD(t *testing.T) {
	perVD := syntheticRecords(6, 40)
	ref := mergeInOrder(perVD, []int{0, 1, 2, 3, 4, 5}, 1)
	broken := mergeInOrder(perVD, []int{0, 1, 2, 3, 4}, 2) // VD 5 dropped mid-merge
	if len(broken.Records()) == len(ref.Records()) {
		t.Fatal("dropped disk left record count unchanged; the oracle is vacuous")
	}
}

// TestRelabelSwapsDirectionalRows: flipping every IO's opcode must exactly
// swap the Read*/Write* columns of both metric domains and negate the
// write-ratio of every row (the W2R relabeling relation).
func TestRelabelSwapsDirectionalRows(t *testing.T) {
	perVD := syntheticRecords(4, 60)
	base := mergeInOrder(perVD, []int{0, 1, 2, 3}, 2)

	flipped := make([][]trace.Record, len(perVD))
	for vd := range perVD {
		flipped[vd] = make([]trace.Record, len(perVD[vd]))
		for i, rec := range perVD[vd] {
			if rec.Op == trace.OpRead {
				rec.Op = trace.OpWrite
			} else {
				rec.Op = trace.OpRead
			}
			flipped[vd][i] = rec
		}
	}
	flip := mergeInOrder(flipped, []int{0, 1, 2, 3}, 2)

	check := func(kind string, a, b []trace.MetricRow) {
		if len(a) != len(b) {
			t.Fatalf("%s: row counts differ: %d != %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i].ReadBps != b[i].WriteBps || a[i].WriteBps != b[i].ReadBps ||
				a[i].ReadIOPS != b[i].WriteIOPS || a[i].WriteIOPS != b[i].ReadIOPS {
				t.Fatalf("%s row %d: relabel did not swap directional columns:\n%+v\n%+v", kind, i, a[i], b[i])
			}
			wr := wrRatio(a[i].WriteBps, a[i].ReadBps)
			fl := wrRatio(b[i].WriteBps, b[i].ReadBps)
			if !math.IsNaN(wr) && wr != -fl {
				t.Fatalf("%s row %d: W2R %v did not negate (%v)", kind, i, wr, fl)
			}
		}
	}
	check("compute", base.ComputeRows(), flip.ComputeRows())
	check("storage", base.StorageRows(), flip.StorageRows())
}

func wrRatio(w, r float64) float64 {
	if w+r == 0 {
		return math.NaN()
	}
	return (w - r) / (w + r)
}
