package invariant

import (
	"errors"
	"strings"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/sketch"
	"ebslab/internal/trace"
)

// sketchShards ingests a tiny record stream split across n per-shard sets
// (round-robin by VD, mirroring the engine's disjoint-VD dealing) and
// returns the shards, their totals, and the merged set. Ingest goes through
// the columnar batch path — the one the engine uses — with a deliberately
// tiny batch capacity to force mid-stream flushes.
func sketchShards(n int) ([]*sketch.Set, []sketch.Totals, *sketch.Set) {
	cfg := sketch.Config{DurationSec: 4, TputCapSum: 1e9}
	shards := make([]*sketch.Set, n)
	batches := make([]*trace.Batch, n)
	for i := range shards {
		shards[i] = sketch.NewSet(cfg)
		batches[i] = trace.NewBatch(5)
	}
	for i := 0; i < 64; i++ {
		rec := trace.Record{
			VD:     cluster.VDID(i % 8),
			Op:     trace.Op(i % 2),
			Size:   int32(4096 * (1 + i%4)),
			Offset: int64(i) * 4096,
			TimeUS: int64(i%4) * 1_000_000,
		}
		rec.Latency[trace.StageComputeNode] = float32(100 + i)
		sh := (i % 8) % n
		if batches[sh].Full() {
			shards[sh].ObserveBatch(batches[sh])
			batches[sh].Reset()
		}
		batches[sh].Append(&rec)
	}
	for i := range shards {
		shards[i].ObserveBatch(batches[i])
	}
	merged := sketch.NewSet(cfg)
	var totals []sketch.Totals
	for _, sh := range shards {
		totals = append(totals, sh.Totals())
		merged.Merge(sh)
	}
	return shards, totals, merged
}

func TestCheckSketchConservationClean(t *testing.T) {
	_, totals, merged := sketchShards(3)
	em := NewEmission(8)
	for i := 0; i < 64; i++ {
		em.Add(cluster.VDID(i%8), trace.Op(i%2), int32(4096*(1+i%4)))
	}
	rep := &Report{}
	CheckSketchConservation(rep, merged, totals, em)
	if !rep.OK() {
		t.Fatalf("clean merge flagged: %s", rep)
	}
	// Without emission ground truth the per-shard comparison alone must
	// still pass.
	rep = &Report{}
	CheckSketchConservation(rep, merged, totals, nil)
	if !rep.OK() {
		t.Fatalf("clean merge flagged without emission: %s", rep)
	}
}

func TestCheckSketchConservationDetectsDrop(t *testing.T) {
	shards, totals, _ := sketchShards(3)
	// "Lose" a shard at the join: merged totals fall short of the summed
	// per-shard ingest.
	merged := sketch.NewSet(shards[0].Config())
	merged.Merge(shards[0])
	merged.Merge(shards[1])
	rep := &Report{}
	CheckSketchConservation(rep, merged, totals, nil)
	if rep.OK() {
		t.Fatal("dropped shard not flagged")
	}
	if got := rep.Violations[0].Law; got != "sketch/conservation" {
		t.Fatalf("law = %q", got)
	}
}

func TestCheckSketchConservationDetectsEmissionMismatch(t *testing.T) {
	_, totals, merged := sketchShards(2)
	em := NewEmission(8)
	em.Add(0, trace.OpRead, 4096) // one IO, nowhere near the 64 ingested
	rep := &Report{}
	CheckSketchConservation(rep, merged, totals, em)
	if rep.OK() {
		t.Fatal("emission mismatch not flagged")
	}
	if !strings.Contains(rep.Violations[0].Msg, "workload emitted") {
		t.Fatalf("unexpected violation: %s", rep)
	}
}

func TestCheckSketchDeterminism(t *testing.T) {
	identical := func(workers int) (*sketch.Set, error) {
		_, _, merged := sketchShards(workers)
		return merged, nil
	}
	rep := &Report{}
	CheckSketchDeterminism(rep, identical, 1, 2, 4)
	if !rep.OK() {
		t.Fatalf("worker-count-invariant sets flagged: %s", rep)
	}

	// A run whose sketch state depends on the worker count must be caught.
	diverging := func(workers int) (*sketch.Set, error) {
		set := sketch.NewSet(sketch.Config{})
		rec := trace.Record{VD: 0, Size: int32(4096 * workers), Op: trace.OpWrite}
		set.Observe(&rec)
		return set, nil
	}
	rep = &Report{}
	CheckSketchDeterminism(rep, diverging, 1, 2)
	if rep.OK() {
		t.Fatal("diverging sketch state not flagged")
	}
	if got := rep.Violations[0].Law; got != "determinism/sketch" {
		t.Fatalf("law = %q", got)
	}

	// A failing run is a violation, not a panic.
	rep = &Report{}
	CheckSketchDeterminism(rep, func(int) (*sketch.Set, error) {
		return nil, errors.New("boom")
	}, 1, 2)
	if rep.OK() {
		t.Fatal("run error not flagged")
	}

	// Fewer than two worker counts cannot certify anything.
	rep = &Report{}
	CheckSketchDeterminism(rep, identical, 4)
	if rep.OK() {
		t.Fatal("single worker count accepted")
	}
}
