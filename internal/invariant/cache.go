package invariant

import (
	"fmt"

	"ebslab/internal/cache"
)

// CacheAudit wraps a cache.Cache and enforces the cache-layer accounting law
// on every touch: each access is exactly a hit or a miss (hits + misses ==
// accesses, tallied independently of the simulator's own counters) and the
// resident set never exceeds capacity. It implements cache.Cache, so it
// drops into cache.Simulate transparently.
type CacheAudit struct {
	Inner        cache.Cache
	Hits, Misses int64
	violations   []string
}

// NewCacheAudit wraps c.
func NewCacheAudit(c cache.Cache) *CacheAudit { return &CacheAudit{Inner: c} }

// Name implements cache.Cache.
func (a *CacheAudit) Name() string { return a.Inner.Name() }

// Len implements cache.Cache.
func (a *CacheAudit) Len() int { return a.Inner.Len() }

// Capacity implements cache.Cache.
func (a *CacheAudit) Capacity() int { return a.Inner.Capacity() }

// Touch implements cache.Cache, auditing the inner policy.
func (a *CacheAudit) Touch(page int64, write bool) bool {
	hit := a.Inner.Touch(page, write)
	if hit {
		a.Hits++
	} else {
		a.Misses++
	}
	if n, c := a.Inner.Len(), a.Inner.Capacity(); n > c && len(a.violations) < maxPerLaw {
		a.violations = append(a.violations,
			fmt.Sprintf("resident set %d pages exceeds capacity %d after touching page %d", n, c, page))
	}
	return hit
}

// SimulateChecked replays accesses through an audited copy of c and folds
// any violations — including any disagreement between the simulator's
// hit/total counters and the audit's independent tally — into rep.
func SimulateChecked(rep *Report, c cache.Cache, accesses []cache.Access) cache.SimResult {
	const law = "conserve/cache"
	audit := NewCacheAudit(c)
	res := cache.Simulate(audit, accesses)
	rep.AddAll(law, audit.violations)

	// Accesses expand to page touches; recount them independently.
	var wantPages int64
	for _, ac := range accesses {
		if ac.Size <= 0 {
			rep.Addf(law, "access at offset %d has non-positive size %d", ac.Offset, ac.Size)
			continue
		}
		first := ac.Offset / cache.PageSize
		last := (ac.Offset + int64(ac.Size) - 1) / cache.PageSize
		wantPages += last - first + 1
	}
	if total := audit.Hits + audit.Misses; total != wantPages {
		rep.Addf(law, "cache saw %d page touches for %d pages of accesses", total, wantPages)
	}
	if res.PageTotal != audit.Hits+audit.Misses {
		rep.Addf(law, "simulator counted %d touches, audit counted %d", res.PageTotal, audit.Hits+audit.Misses)
	}
	if res.PageHits != audit.Hits {
		rep.Addf(law, "simulator counted %d hits, audit counted %d", res.PageHits, audit.Hits)
	}
	if res.PageHits < 0 || res.PageHits > res.PageTotal {
		rep.Addf(law, "hits %d outside [0, %d]", res.PageHits, res.PageTotal)
	}
	return res
}
