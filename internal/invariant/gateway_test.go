package invariant

import "testing"

func TestCheckGatewayAccounting(t *testing.T) {
	cases := []struct {
		name    string
		l       StudyLedger
		drained bool
		ok      bool
	}{
		{
			name: "clean drained session",
			l: StudyLedger{
				Submitted: 6, Rejected: 1, Deduped: 2,
				Granted: 5, Completed: 4, Failed: 0,
				CanceledQueued: 1, CanceledRunning: 1,
			},
			drained: true,
			ok:      true,
		},
		{
			name: "live session with work in flight",
			l: StudyLedger{
				Submitted: 4, Granted: 2,
				Completed: 1, Queued: 2, Running: 1,
			},
			ok: true,
		},
		{
			name:    "leaked job at drain",
			l:       StudyLedger{Submitted: 2, Granted: 1, Completed: 1, Queued: 1},
			drained: true,
		},
		{
			name: "state sum does not cover submissions",
			l:    StudyLedger{Submitted: 3, Granted: 1, Completed: 1},
		},
		{
			name: "grants unaccounted by run states",
			l:    StudyLedger{Submitted: 2, Granted: 2, Completed: 1, Queued: 1},
		},
		{
			name: "negative counter",
			l:    StudyLedger{Submitted: -1, Queued: -1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rep Report
			CheckGatewayAccounting(&rep, &tc.l, tc.drained)
			if got := rep.OK(); got != tc.ok {
				t.Fatalf("OK() = %v, want %v; report:\n%s", got, tc.ok, rep.String())
			}
		})
	}
}

func TestCheckGrantPacing(t *testing.T) {
	var rep Report
	// rate 1/s, burst 2: two immediate grants then one per second is legal.
	CheckGrantPacing(&rep, "a", 1, 2, []float64{0, 0, 1, 2, 3})
	if !rep.OK() {
		t.Fatalf("legal pacing flagged:\n%s", rep.String())
	}
	// Three grants in the same instant exceed burst 2.
	var bad Report
	CheckGrantPacing(&bad, "b", 1, 2, []float64{5, 5, 5})
	if bad.OK() {
		t.Fatal("burst violation not flagged")
	}
	// Out-of-order log is itself a violation.
	var ooo Report
	CheckGrantPacing(&ooo, "c", 1, 2, []float64{2, 1})
	if ooo.OK() {
		t.Fatal("out-of-order grant log not flagged")
	}
}
