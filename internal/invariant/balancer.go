package invariant

import (
	"math"

	"ebslab/internal/balancer"
	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// CheckBalancer replays a balancer run's migration log against a clone of
// the starting placement and asserts the §6 conservation laws:
//
//   - every migration moves a segment from the BlockServer that actually
//     hosted it at that point in the replay (no phantom or duplicate moves),
//     to a distinct in-range importer;
//   - migrations only rearrange load — each period's summed per-BS traffic
//     equals the summed segment traffic, whatever the placement;
//   - the per-period CoVs the run reported are exactly what the replayed
//     placements yield (loads are re-accumulated in the balancer's own
//     iteration order, so agreement is bit-exact, NaN matching NaN).
func CheckBalancer(rep *Report, seg2bs *cluster.SegmentMap, segTraffic [][]balancer.RW, res *balancer.Result) {
	const law = "conserve/balancer"
	if len(segTraffic) != seg2bs.Len() {
		rep.Addf(law, "%d traffic rows for %d segments", len(segTraffic), seg2bs.Len())
		return
	}
	placement := seg2bs.Clone()
	nBS := placement.NumBS()
	nPeriods := len(res.WriteCoV)
	if len(res.ReadCoV) != nPeriods {
		rep.Addf(law, "%d write-CoV periods but %d read-CoV periods", nPeriods, len(res.ReadCoV))
		return
	}

	mig := res.Migrations
	lastPeriod := -1
	for p := 0; p < nPeriods; p++ {
		// Measure the period under the replayed placement, accumulating in
		// the balancer's own (segment-ascending) order.
		bsW := make([]float64, nBS)
		bsR := make([]float64, nBS)
		var segW, segR float64
		for seg, rows := range segTraffic {
			b := placement.BSOf(cluster.SegmentID(seg))
			bsW[b] += rows[p].W
			bsR[b] += rows[p].R
			segW += rows[p].W
			segR += rows[p].R
		}
		var sumW, sumR float64
		for b := 0; b < nBS; b++ {
			sumW += bsW[b]
			sumR += bsR[b]
		}
		if !relEq(sumW, segW) || !relEq(sumR, segR) {
			rep.Addf(law, "period %d: per-BS load %v/%v B does not conserve segment traffic %v/%v B",
				p, sumW, sumR, segW, segR)
		}
		if w := stats.NormCoV(bsW); !eqNaN(w, res.WriteCoV[p]) {
			rep.Addf(law, "period %d: reported write CoV %v, replay yields %v", p, res.WriteCoV[p], w)
		}
		if r := stats.NormCoV(bsR); !eqNaN(r, res.ReadCoV[p]) {
			rep.Addf(law, "period %d: reported read CoV %v, replay yields %v", p, res.ReadCoV[p], r)
		}

		// Apply this period's migrations in log order.
		for len(mig) > 0 && mig[0].Period == p {
			m := mig[0]
			mig = mig[1:]
			if m.Period < lastPeriod {
				rep.Addf(law, "migration of segment %d: period %d after period %d in the log", m.Seg, m.Period, lastPeriod)
			}
			lastPeriod = m.Period
			if m.Seg < 0 || int(m.Seg) >= placement.Len() {
				rep.Addf(law, "period %d: migration of unknown segment %d", p, m.Seg)
				continue
			}
			if got := placement.BSOf(m.Seg); got != m.From {
				rep.Addf(law, "period %d: migration claims segment %d was on BS %d, replay has it on %d",
					p, m.Seg, m.From, got)
			}
			if m.To < 0 || int(m.To) >= nBS || m.To == m.From {
				rep.Addf(law, "period %d: segment %d migrated to invalid importer %d (from %d)", p, m.Seg, m.To, m.From)
				continue
			}
			placement.Move(m.Seg, m.To)
		}
	}
	for _, m := range mig {
		rep.Addf(law, "migration of segment %d in period %d beyond the run's %d periods", m.Seg, m.Period, nPeriods)
	}
}

func eqNaN(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}
