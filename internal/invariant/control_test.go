package invariant_test

import (
	"strings"
	"testing"

	"ebslab/internal/balancer"
	"ebslab/internal/cluster"
	"ebslab/internal/control"
	"ebslab/internal/invariant"
	"ebslab/internal/throttle"
	"ebslab/internal/trace"
)

// controlScenario builds a small world whose reactive plan contains both
// migrations and lending grants, then returns the plan with the inputs the
// actuation law replays against.
func controlScenario(t *testing.T) (*control.Plan, *cluster.SegmentMap, []int8, []throttle.Caps) {
	t.Helper()
	sh := control.ObsShape{
		EpochSec: 10, DurSec: 40,
		Segments: 4, VDs: 2, QPs: 2, WTs: 2,
		WTBase: []int{0}, Scale: 1,
	}
	obs := control.NewObservation(sh)
	batch := trace.NewBatch(128)
	for sec := 0; sec < 40; sec += 2 {
		for _, seg := range []int{0, 1} {
			i := batch.Next()
			batch.TimeUS[i] = int64(sec) * 1_000_000
			batch.Op[i] = trace.OpWrite
			batch.Size[i] = 4 << 20
			batch.VD[i] = 0
			batch.QP[i] = 0
			batch.Segment[i] = cluster.SegmentID(seg)
		}
		i := batch.Next()
		batch.TimeUS[i] = int64(sec) * 1_000_000
		batch.Op[i] = trace.OpRead
		batch.Size[i] = 4096
		batch.VD[i] = 1
		batch.QP[i] = 1
		batch.WT[i] = 1
		batch.Segment[i] = 2
	}
	obs.ObserveBatch(batch)

	placement := cluster.NewSegmentMap(4, 2)
	placement.Assign(0, 0)
	placement.Assign(1, 0)
	placement.Assign(2, 1)
	placement.Assign(3, 1)
	binding := []int8{0, 1}
	caps := []throttle.Caps{
		{Tput: 1 << 20, IOPS: 1000},
		{Tput: 64 << 20, IOPS: 1000},
	}
	plan, err := control.BuildPlan(control.Reactive{}, control.Config{EpochSec: 10}, control.Input{
		Obs: obs, Placement: placement, Binding: binding, Caps: caps,
		VMOfVD: []int{0, 0}, NodeOfQP: []int{0, 0},
	})
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	var migrates, lends int
	for _, d := range plan.Decisions {
		switch d.Kind {
		case control.DecMigrate:
			migrates++
		case control.DecLend:
			lends++
		}
	}
	if migrates == 0 || lends == 0 {
		t.Fatalf("scenario wants both migrations and lends, got %d/%d", migrates, lends)
	}
	return plan, placement, binding, caps
}

func TestControlActuationLawHolds(t *testing.T) {
	plan, placement, binding, caps := controlScenario(t)
	rep := &invariant.Report{}
	invariant.CheckControlActuation(rep, plan, placement, binding, caps)
	if !rep.OK() {
		t.Fatalf("clean plan violates the actuation law:\n%s", rep)
	}
}

func TestControlActuationLawCatchesTampering(t *testing.T) {
	t.Run("applied entry without decision", func(t *testing.T) {
		plan, placement, binding, caps := controlScenario(t)
		extra := plan.Applied[len(plan.Applied)-1]
		plan.Applied = append(plan.Applied, extra)
		rep := &invariant.Report{}
		invariant.CheckControlActuation(rep, plan, placement, binding, caps)
		if rep.OK() || !strings.Contains(rep.String(), "no decision") {
			t.Fatalf("extra applied entry not flagged:\n%s", rep)
		}
	})
	t.Run("decision without applied entry", func(t *testing.T) {
		plan, placement, binding, caps := controlScenario(t)
		plan.Applied = plan.Applied[:len(plan.Applied)-1]
		rep := &invariant.Report{}
		invariant.CheckControlActuation(rep, plan, placement, binding, caps)
		if rep.OK() {
			t.Fatalf("dropped applied entry not flagged")
		}
	})
	t.Run("rerouted migration", func(t *testing.T) {
		plan, placement, binding, caps := controlScenario(t)
		for i := range plan.Decisions {
			if plan.Decisions[i].Kind == control.DecMigrate {
				plan.Decisions[i].To = plan.Decisions[i].From
				break
			}
		}
		rep := &invariant.Report{}
		invariant.CheckControlActuation(rep, plan, placement, binding, caps)
		if rep.OK() {
			t.Fatalf("rerouted migration not flagged")
		}
	})
	t.Run("minting lend", func(t *testing.T) {
		plan, placement, binding, caps := controlScenario(t)
		for i, d := range plan.Decisions {
			if d.Kind == control.DecLend && d.TputDelta < 0 {
				// Flip a debit into a grant: the epoch now mints cap.
				plan.Decisions[i].TputDelta = -d.TputDelta
				break
			}
		}
		rep := &invariant.Report{}
		invariant.CheckControlActuation(rep, plan, placement, binding, caps)
		if rep.OK() || !strings.Contains(rep.String(), "mints") {
			t.Fatalf("minting lend not flagged:\n%s", rep)
		}
	})
	t.Run("applied log must join on epoch second", func(t *testing.T) {
		plan, placement, binding, caps := controlScenario(t)
		plan.Applied[0].AtSec++
		rep := &invariant.Report{}
		invariant.CheckControlActuation(rep, plan, placement, binding, caps)
		if rep.OK() {
			t.Fatalf("shifted AtSec not flagged")
		}
	})
	t.Run("nil timeline", func(t *testing.T) {
		plan, placement, binding, caps := controlScenario(t)
		plan.Timeline = nil
		rep := &invariant.Report{}
		invariant.CheckControlActuation(rep, plan, placement, binding, caps)
		if rep.OK() {
			t.Fatalf("nil timeline not flagged")
		}
	})
	t.Run("balancer log entries carry the epoch second", func(t *testing.T) {
		plan, _, _, _ := controlScenario(t)
		for _, m := range plan.Applied {
			if m.AtSec != m.Period*plan.Timeline.EpochSec {
				t.Fatalf("applied migration %+v: AtSec != Period*EpochSec", m)
			}
		}
		_ = balancer.Migration{} // the join type is the balancer's, by construction
	})
}
