package invariant

import (
	"ebslab/internal/chaos"
)

// CheckChaosSchedule asserts the fault layer's own laws over an expanded
// schedule: every window is well-formed and in-range, and re-expanding the
// plan against the same (seed, shape) reproduces the schedule bit-exactly —
// the replay-determinism contract every chaos result rests on.
func CheckChaosSchedule(rep *Report, plan *chaos.Plan, runSeed int64, sched *chaos.Schedule) {
	const law = "chaos/schedule"
	if plan == nil || sched == nil {
		rep.Addf(law, "nil plan or schedule")
		return
	}
	if err := plan.Validate(); err != nil {
		rep.Addf(law, "plan invalid: %v", err)
	}
	for i, c := range sched.Crashes {
		if c.BS < 0 || c.BS >= sched.Shape.BSs {
			rep.Addf(law, "crash %d: BS %d outside fleet of %d", i, c.BS, sched.Shape.BSs)
		}
		if c.Start < 0 || c.End <= c.Start || c.Start >= sched.Shape.DurSec {
			rep.Addf(law, "crash %d: window [%d, %d) malformed for a %ds run", i, c.Start, c.End, sched.Shape.DurSec)
		}
		if i > 0 && sched.Crashes[i-1].Start > c.Start {
			rep.Addf(law, "crash %d: windows out of Start order", i)
		}
	}
	for i, st := range sched.Storms {
		if st.VD < 0 || st.VD >= sched.Shape.VDs {
			rep.Addf(law, "storm %d: VD %d outside fleet of %d", i, st.VD, sched.Shape.VDs)
		}
		if st.Start < 0 || st.End <= st.Start || st.Start >= sched.Shape.DurSec {
			rep.Addf(law, "storm %d: window [%d, %d) malformed for a %ds run", i, st.Start, st.End, sched.Shape.DurSec)
		}
		if st.Factor <= 0 {
			rep.Addf(law, "storm %d: factor %v not positive", i, st.Factor)
		}
		if i > 0 && sched.Storms[i-1].Start > st.Start {
			rep.Addf(law, "storm %d: windows out of Start order", i)
		}
	}
	if again := plan.Expand(runSeed, sched.Shape); again.Fingerprint() != sched.Fingerprint() {
		rep.Addf(law, "re-expansion diverges: %s != %s — schedule is not a pure function of (seed, plan, shape)",
			fpShort(again.Fingerprint()), fpShort(sched.Fingerprint()))
	}
}

// fpShort abbreviates a fingerprint for violation messages.
func fpShort(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// CheckChaosNeutrality asserts the fault layer's conservation law: a
// dataset-neutral schedule (every window recovered, no latency penalty, no
// storms) must leave the dataset fingerprint untouched. Pass the fingerprints
// of the chaos run and of the fault-free run at the same seed and options.
func CheckChaosNeutrality(rep *Report, sched *chaos.Schedule, chaosFP, baselineFP string) {
	const law = "chaos/neutrality"
	if sched == nil {
		rep.Addf(law, "nil schedule")
		return
	}
	if !sched.DatasetNeutral() {
		return // disruptive by design; nothing to assert
	}
	if chaosFP != baselineFP {
		rep.Addf(law, "neutral schedule perturbed the dataset (%s != %s)", fpShort(chaosFP), fpShort(baselineFP))
	}
}
