package invariant

// StudyLedger is the gateway's per-job accounting for one serving session,
// expressed in plain integers so the law has no dependency on the gateway
// package (mirroring ShardLedger for the fabric). Every submission is
// counted exactly once at arrival (Submitted, Rejected, or Deduped), every
// accepted study occupies exactly one lifecycle state at any instant, and
// grants are the only door from queued to running.
type StudyLedger struct {
	// Submitted counts submissions accepted into a tenant queue.
	Submitted int
	// Rejected counts submissions refused at admission (tenant queue full).
	Rejected int
	// Deduped counts submissions answered from a completed study with the
	// same content address (no new job was created).
	Deduped int

	// Granted counts queued studies handed a run slot by the scheduler.
	Granted int

	// Completed, Failed counts studies that finished running.
	Completed int
	Failed    int
	// CanceledQueued and CanceledRunning split cancellations by the state
	// the study was in when the cancel landed.
	CanceledQueued  int
	CanceledRunning int

	// Queued and Running are the studies currently in each live state.
	Queued  int
	Running int
}

// CheckGatewayAccounting is the serving plane's conservation law: every
// accepted study is in exactly one state (queued, running, or terminal),
// grants account for every study that ever ran, and nothing leaks. With
// drained set (the gateway has shut down or gone idle), live states must be
// empty — a non-zero Queued or Running then is a leaked job.
func CheckGatewayAccounting(rep *Report, l *StudyLedger, drained bool) {
	const law = "gateway/accounting"
	for _, c := range []struct {
		name string
		v    int
	}{
		{"Submitted", l.Submitted}, {"Rejected", l.Rejected}, {"Deduped", l.Deduped},
		{"Granted", l.Granted}, {"Completed", l.Completed}, {"Failed", l.Failed},
		{"CanceledQueued", l.CanceledQueued}, {"CanceledRunning", l.CanceledRunning},
		{"Queued", l.Queued}, {"Running", l.Running},
	} {
		if c.v < 0 {
			rep.Addf(law, "%s is %d, want >= 0", c.name, c.v)
		}
	}
	// Every accepted study is queued, running, or terminal — exactly once.
	states := l.Queued + l.Running + l.Completed + l.Failed + l.CanceledQueued + l.CanceledRunning
	if states != l.Submitted {
		rep.Addf(law, "states sum to %d but %d studies were submitted (leak or double-count)",
			states, l.Submitted)
	}
	// Grants open every run: whatever is running or finished running was
	// granted, and every grant is accounted by exactly one of those states.
	ran := l.Running + l.Completed + l.Failed + l.CanceledRunning
	if l.Granted != ran {
		rep.Addf(law, "%d grants but %d studies running or finished running", l.Granted, ran)
	}
	if l.Granted > l.Submitted {
		rep.Addf(law, "%d grants exceed %d submissions", l.Granted, l.Submitted)
	}
	if drained {
		if l.Queued != 0 {
			rep.Addf(law, "drained gateway still holds %d queued studies", l.Queued)
		}
		if l.Running != 0 {
			rep.Addf(law, "drained gateway still holds %d running studies", l.Running)
		}
	}
}

// CheckGrantPacing is the token-bucket conservation law over one tenant's
// grant log: in every closed interval of the log, the number of grants can
// exceed the banked burst by at most rate * elapsed — i.e. the scheduler
// never granted faster than the tenant's cap refills. atSec is the grant
// times in seconds (any epoch), in grant order.
func CheckGrantPacing(rep *Report, tenant string, rate, burst float64, atSec []float64) {
	const law = "gateway/pacing"
	const eps = 1e-9
	for i := 1; i < len(atSec); i++ {
		if atSec[i] < atSec[i-1] {
			rep.Addf(law, "tenant %s: grant %d at %.3fs precedes grant %d at %.3fs",
				tenant, i, atSec[i], i-1, atSec[i-1])
			return
		}
	}
	for i := range atSec {
		for j := i; j < len(atSec); j++ {
			grants := float64(j - i + 1)
			allowed := burst + rate*(atSec[j]-atSec[i])
			if grants > allowed+eps {
				rep.Addf(law, "tenant %s: %d grants in %.3fs window starting at grant %d, cap allows %.2f",
					tenant, j-i+1, atSec[j]-atSec[i], i, allowed)
				return
			}
		}
	}
}
