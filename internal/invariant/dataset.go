package invariant

import (
	"math"

	"ebslab/internal/cluster"
	"ebslab/internal/control"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// Artifacts bundles everything one simulation run produced, for checking.
// Dataset and Fleet are required; Emission is optional (without it the
// workload-layer conservation law is skipped, the rest still run).
type Artifacts struct {
	Fleet   *workload.Fleet
	Dataset *trace.Dataset
	// Emission is the workload-layer ground truth (engine counters or an
	// independent CountEmission recount).
	Emission *Emission
	// EventSampleEvery is the event-thinning factor the run used; metric
	// rows were scaled back up by it, so emission comparisons scale the
	// ground truth by the same factor.
	EventSampleEvery int
	// TraceSampleEvery is the DiTing sampling rate of the run. When 1,
	// every IO was traced and the per-IO record counts become a third,
	// independently countable ledger.
	TraceSampleEvery int
	// Control is the mitigation timeline an actuated run applied, nil for
	// uncontrolled runs. The placement laws consult it: a record emitted in
	// an epoch whose timeline row moved the segment must carry the
	// timeline's BS, not the static placement's.
	Control *control.Timeline
}

// expectedBS is the storage node the run's placement assigns to seg at sec:
// the control timeline's epoch row when one is in force, the static segment
// map otherwise.
func (a *Artifacts) expectedBS(sec int, seg cluster.SegmentID) cluster.StorageNodeID {
	if a.Control != nil {
		if row := a.Control.BSRow(a.Control.EpochOf(sec)); row != nil {
			return row[seg]
		}
	}
	return a.Dataset.Seg2BS.BSOf(seg)
}

func (a *Artifacts) factor() float64 {
	if a.EventSampleEvery > 1 {
		return float64(a.EventSampleEvery)
	}
	return 1
}

// sectorSize mirrors the workload generator's IO alignment quantum.
const sectorSize = 4 << 10

// relEq compares two float64s with a relative tolerance. The conservation
// sums are integer-valued (exact in float64 below 2^53), so the tolerance
// only shields against pathological magnitudes.
func relEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// traceIntegrity asserts referential integrity of every per-IO record: each
// field must name a real entity and the fields must agree with the topology
// (the QP belongs to the VD, the segment covers the offset, the storage
// node is the one the placement assigns, and so on).
type traceIntegrity struct{}

func (traceIntegrity) Name() string { return "trace/integrity" }

func (traceIntegrity) Check(a *Artifacts, rep *Report) {
	const law = "trace/integrity"
	top := a.Dataset.Topology
	winUS := int64(a.Dataset.DurationSec) * 1_000_000
	for i := range a.Dataset.Trace {
		r := &a.Dataset.Trace[i]
		if int(r.VD) >= len(top.VDs) || r.VD < 0 {
			rep.Addf(law, "record %d: VD %d out of range", i, r.VD)
			continue
		}
		vd := &top.VDs[r.VD]
		if int(r.QP) >= len(top.QPs) || r.QP < 0 || top.QPs[r.QP].VD != r.VD {
			rep.Addf(law, "record %d: QP %d not owned by VD %d", i, r.QP, r.VD)
		}
		if int(r.Segment) >= len(top.Segments) || r.Segment < 0 || top.Segments[r.Segment].VD != r.VD {
			rep.Addf(law, "record %d: segment %d not owned by VD %d", i, r.Segment, r.VD)
		} else if bs := a.expectedBS(int(r.TimeUS/1_000_000), r.Segment); bs != r.Storage {
			rep.Addf(law, "record %d: storage node %d but placement maps segment %d to %d", i, r.Storage, r.Segment, bs)
		}
		if vd.VM != r.VM {
			rep.Addf(law, "record %d: VM %d but VD %d belongs to VM %d", i, r.VM, r.VD, vd.VM)
		} else {
			vm := &top.VMs[r.VM]
			if vm.Node != r.Node {
				rep.Addf(law, "record %d: node %d but VM %d lives on node %d", i, r.Node, r.VM, vm.Node)
			} else {
				node := &top.Nodes[r.Node]
				if node.DC != r.DC {
					rep.Addf(law, "record %d: DC %d but node %d is in DC %d", i, r.DC, r.Node, node.DC)
				}
				if r.WT < 0 || int(r.WT) >= node.WorkerNum {
					rep.Addf(law, "record %d: WT %d outside node %d's %d worker threads", i, r.WT, r.Node, node.WorkerNum)
				}
			}
			if vm.User != r.User {
				rep.Addf(law, "record %d: user %d but VM %d belongs to user %d", i, r.User, r.VM, vm.User)
			}
		}
		if r.TimeUS < 0 || r.TimeUS >= winUS {
			rep.Addf(law, "record %d: time %dus outside window [0, %dus)", i, r.TimeUS, winUS)
		}
		if r.Size <= 0 || int64(r.Size)%sectorSize != 0 {
			rep.Addf(law, "record %d: size %d not a positive sector multiple", i, r.Size)
		}
		if r.Offset < 0 || r.Offset%sectorSize != 0 || r.Offset+int64(r.Size) > vd.Capacity {
			rep.Addf(law, "record %d: span [%d, %d) outside VD %d's %d-byte space or misaligned",
				i, r.Offset, r.Offset+int64(r.Size), r.VD, vd.Capacity)
		} else if seg := top.SegmentOfOffset(r.VD, r.Offset); seg != r.Segment {
			rep.Addf(law, "record %d: offset %d lies in segment %d, record says %d", i, r.Offset, seg, r.Segment)
		}
		for st, l := range r.Latency {
			if math.IsNaN(float64(l)) || l < 0 {
				rep.Addf(law, "record %d: stage %d latency %v invalid", i, st, l)
			}
		}
	}
}

// traceCanonical asserts the merge's canonical ordering contract: records
// sorted by (TimeUS, VD) with trace IDs reassigned 1..N in that order. This
// is what makes a run's trace byte-identical across worker counts — any
// shard-dependent leakage shows up here.
type traceCanonical struct{}

func (traceCanonical) Name() string { return "trace/canonical-order" }

func (traceCanonical) Check(a *Artifacts, rep *Report) {
	const law = "trace/canonical-order"
	recs := a.Dataset.Trace
	for i := range recs {
		if recs[i].TraceID != uint64(i+1) {
			rep.Addf(law, "record %d: trace ID %d, want %d", i, recs[i].TraceID, i+1)
		}
		if i == 0 {
			continue
		}
		p, c := &recs[i-1], &recs[i]
		if p.TimeUS > c.TimeUS || (p.TimeUS == c.TimeUS && p.VD > c.VD) {
			rep.Addf(law, "records %d-%d out of (time, VD) order: (%d, %d) then (%d, %d)",
				i-1, i, p.TimeUS, p.VD, c.TimeUS, c.VD)
		}
	}
}

// rowSanity asserts per-row invariants of the metric dataset: finite
// non-negative rates, in-window seconds, identity fields that agree with
// the topology, canonical sort order, and no duplicate aggregation keys.
type rowSanity struct{}

func (rowSanity) Name() string { return "metric/row-sanity" }

func (rowSanity) Check(a *Artifacts, rep *Report) {
	const law = "metric/row-sanity"
	top := a.Dataset.Topology
	checkRates := func(kind string, i int, m *trace.MetricRow) {
		for _, v := range [...]float64{m.ReadBps, m.WriteBps, m.ReadIOPS, m.WriteIOPS} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				rep.Addf(law, "%s row %d: invalid rate %v", kind, i, v)
				return
			}
		}
		if m.Bps() == 0 && m.IOPS() == 0 {
			rep.Addf(law, "%s row %d: empty row (no traffic)", kind, i)
		}
		if m.Sec < 0 || int(m.Sec) >= a.Dataset.DurationSec {
			rep.Addf(law, "%s row %d: second %d outside window [0, %d)", kind, i, m.Sec, a.Dataset.DurationSec)
		}
	}

	type computeKey struct {
		sec int32
		qp  cluster.QPID
	}
	seenC := make(map[computeKey]bool, len(a.Dataset.Compute))
	for i := range a.Dataset.Compute {
		m := &a.Dataset.Compute[i]
		if m.Domain != trace.DomainCompute {
			rep.Addf(law, "compute row %d: domain %v", i, m.Domain)
		}
		checkRates("compute", i, m)
		if int(m.QP) >= len(top.QPs) || m.QP < 0 || top.QPs[m.QP].VD != m.VD {
			rep.Addf(law, "compute row %d: QP %d not owned by VD %d", i, m.QP, m.VD)
		}
		k := computeKey{m.Sec, m.QP}
		if seenC[k] {
			rep.Addf(law, "compute row %d: duplicate key (sec %d, QP %d)", i, m.Sec, m.QP)
		}
		seenC[k] = true
		if i > 0 {
			p := &a.Dataset.Compute[i-1]
			if p.Sec > m.Sec || (p.Sec == m.Sec && p.QP > m.QP) {
				rep.Addf(law, "compute rows %d-%d out of (sec, QP) order", i-1, i)
			}
		}
	}

	type storageKey struct {
		sec int32
		seg cluster.SegmentID
	}
	seenS := make(map[storageKey]bool, len(a.Dataset.Storage))
	for i := range a.Dataset.Storage {
		m := &a.Dataset.Storage[i]
		if m.Domain != trace.DomainStorage {
			rep.Addf(law, "storage row %d: domain %v", i, m.Domain)
		}
		checkRates("storage", i, m)
		if int(m.Segment) >= len(top.Segments) || m.Segment < 0 || top.Segments[m.Segment].VD != m.VD {
			rep.Addf(law, "storage row %d: segment %d not owned by VD %d", i, m.Segment, m.VD)
		} else if bs := a.expectedBS(int(m.Sec), m.Segment); bs != m.Storage {
			rep.Addf(law, "storage row %d: storage node %d but placement says %d", i, m.Storage, bs)
		}
		k := storageKey{m.Sec, m.Segment}
		if seenS[k] {
			rep.Addf(law, "storage row %d: duplicate key (sec %d, segment %d)", i, m.Sec, m.Segment)
		}
		seenS[k] = true
		if i > 0 {
			p := &a.Dataset.Storage[i-1]
			if p.Sec > m.Sec || (p.Sec == m.Sec && p.Segment > m.Segment) {
				rep.Addf(law, "storage rows %d-%d out of (sec, segment) order", i-1, i)
			}
		}
	}
}

// vdSecTotals aggregates one metric domain to (VD, second) granularity.
type vdSecTotals struct {
	rBps, wBps, rOps, wOps float64
}

type vdSecKey struct {
	vd  cluster.VDID
	sec int32
}

func foldRows(rows []trace.MetricRow) map[vdSecKey]*vdSecTotals {
	out := make(map[vdSecKey]*vdSecTotals)
	for i := range rows {
		m := &rows[i]
		k := vdSecKey{m.VD, m.Sec}
		t := out[k]
		if t == nil {
			t = &vdSecTotals{}
			out[k] = t
		}
		t.rBps += m.ReadBps
		t.wBps += m.WriteBps
		t.rOps += m.ReadIOPS
		t.wOps += m.WriteIOPS
	}
	return out
}

// domainConservation asserts the hypervisor-to-BlockServer conservation
// law: both metric domains observe the same IOs, grouped differently (per
// QP-WT vs per segment), so at (VD, second) granularity their totals must
// agree exactly. A shard merge that drops, duplicates, or misattributes
// work in one domain breaks this immediately.
type domainConservation struct{}

func (domainConservation) Name() string { return "conserve/compute-vs-storage" }

func (domainConservation) Check(a *Artifacts, rep *Report) {
	const law = "conserve/compute-vs-storage"
	comp := foldRows(a.Dataset.Compute)
	stor := foldRows(a.Dataset.Storage)
	for k, c := range comp {
		s := stor[k]
		if s == nil {
			rep.Addf(law, "VD %d sec %d: hypervisor saw %v B/s but no storage rows", k.vd, k.sec, c.rBps+c.wBps)
			continue
		}
		if !relEq(c.rBps, s.rBps) || !relEq(c.wBps, s.wBps) {
			rep.Addf(law, "VD %d sec %d: bytes diverge between domains (compute %v/%v, storage %v/%v)",
				k.vd, k.sec, c.rBps, c.wBps, s.rBps, s.wBps)
		}
		if !relEq(c.rOps, s.rOps) || !relEq(c.wOps, s.wOps) {
			rep.Addf(law, "VD %d sec %d: ops diverge between domains (compute %v/%v, storage %v/%v)",
				k.vd, k.sec, c.rOps, c.wOps, s.rOps, s.wOps)
		}
	}
	for k, s := range stor {
		if comp[k] == nil {
			rep.Addf(law, "VD %d sec %d: BlockServer saw %v B/s but no compute rows", k.vd, k.sec, s.rBps+s.wBps)
		}
	}
}

// workloadConservation asserts the workload-to-dataset conservation law:
// per VD, the metric rows must account for exactly the IOs the generator
// emitted (scaled by the event-thinning factor), and — when every IO was
// traced — the per-IO records must as well. This is the law that catches
// an IO silently dropped anywhere between generation and the final merge.
type workloadConservation struct{}

func (workloadConservation) Name() string { return "conserve/workload" }

func (workloadConservation) Check(a *Artifacts, rep *Report) {
	const law = "conserve/workload"
	if a.Emission == nil {
		return
	}
	f := a.factor()

	// Per-VD dataset totals from the compute domain.
	type tot struct{ rB, wB, rOps, wOps float64 }
	ds := make(map[cluster.VDID]*tot)
	for i := range a.Dataset.Compute {
		m := &a.Dataset.Compute[i]
		t := ds[m.VD]
		if t == nil {
			t = &tot{}
			ds[m.VD] = t
		}
		t.rB += m.ReadBps
		t.wB += m.WriteBps
		t.rOps += m.ReadIOPS
		t.wOps += m.WriteIOPS
	}
	for vd := range a.Emission.PerVD {
		em := &a.Emission.PerVD[vd]
		t := ds[cluster.VDID(vd)]
		if t == nil {
			if em.Events != 0 {
				rep.Addf(law, "VD %d: workload emitted %d IOs but dataset has none", vd, em.Events)
			}
			continue
		}
		if !relEq(t.rOps, float64(em.ReadOps)*f) || !relEq(t.wOps, float64(em.WriteOps)*f) {
			rep.Addf(law, "VD %d: op counts diverge (dataset %v/%v, workload %v/%v after x%v scaling)",
				vd, t.rOps, t.wOps, em.ReadOps, em.WriteOps, f)
		}
		if !relEq(t.rB, float64(em.ReadBytes)*f) || !relEq(t.wB, float64(em.WriteBytes)*f) {
			rep.Addf(law, "VD %d: byte totals diverge (dataset %v/%v, workload %v/%v after x%v scaling)",
				vd, t.rB, t.wB, em.ReadBytes, em.WriteBytes, f)
		}
	}
	for vd, t := range ds {
		if int(vd) >= len(a.Emission.PerVD) {
			rep.Addf(law, "VD %d: dataset rows for a disk the workload never emitted (%v B/s)", vd, t.rB+t.wB)
		}
	}

	// With full tracing, the per-IO records are a third ledger.
	if a.TraceSampleEvery == 1 {
		perVD := make(map[cluster.VDID]int64)
		for i := range a.Dataset.Trace {
			perVD[a.Dataset.Trace[i].VD]++
		}
		var want int64
		for vd := range a.Emission.PerVD {
			em := &a.Emission.PerVD[vd]
			want += em.Events
			if got := perVD[cluster.VDID(vd)]; got != em.Events {
				rep.Addf(law, "VD %d: %d trace records for %d emitted IOs (full tracing)", vd, got, em.Events)
			}
		}
		if int64(len(a.Dataset.Trace)) != want {
			rep.Addf(law, "trace has %d records for %d emitted IOs (full tracing)", len(a.Dataset.Trace), want)
		}
	}
}
