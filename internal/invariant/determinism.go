package invariant

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"ebslab/internal/trace"
)

// Fingerprint returns a collision-resistant digest of everything a dataset
// observed: every per-IO record and every metric row, field by field, in
// order. Two runs are byte-identical replays iff their fingerprints match,
// which is what the determinism oracles compare.
func Fingerprint(ds *trace.Dataset) string {
	h := sha256.New()
	var buf [8]byte
	wU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wI64 := func(v int64) { wU64(uint64(v)) }
	wF64 := func(v float64) { wU64(math.Float64bits(v)) }

	wI64(int64(ds.DurationSec))
	wI64(int64(len(ds.Trace)))
	for i := range ds.Trace {
		r := &ds.Trace[i]
		wU64(r.TraceID)
		wI64(r.TimeUS)
		wU64(uint64(r.Op))
		wI64(int64(r.Size))
		wI64(r.Offset)
		wI64(int64(r.DC))
		wI64(int64(r.Node))
		wI64(int64(r.User))
		wI64(int64(r.VM))
		wI64(int64(r.VD))
		wI64(int64(r.QP))
		wI64(int64(r.WT))
		wI64(int64(r.Storage))
		wI64(int64(r.Segment))
		for _, l := range r.Latency {
			wU64(uint64(math.Float32bits(l)))
		}
	}
	hashRows(h, wI64, wF64, ds.Compute)
	hashRows(h, wI64, wF64, ds.Storage)
	return hex.EncodeToString(h.Sum(nil))
}

func hashRows(h hash.Hash, wI64 func(int64), wF64 func(float64), rows []trace.MetricRow) {
	wI64(int64(len(rows)))
	for i := range rows {
		m := &rows[i]
		wI64(int64(m.Domain))
		wI64(int64(m.Sec))
		wI64(int64(m.DC))
		wI64(int64(m.User))
		wI64(int64(m.VM))
		wI64(int64(m.VD))
		wI64(int64(m.Node))
		wI64(int64(m.QP))
		wI64(int64(m.WT))
		wI64(int64(m.Storage))
		wI64(int64(m.Segment))
		wF64(m.ReadBps)
		wF64(m.WriteBps)
		wF64(m.ReadIOPS)
		wF64(m.WriteIOPS)
	}
}

// CheckDeterminism is the replay oracle: it invokes run once per worker
// count and asserts every resulting dataset fingerprints identically to the
// first. The run closure is typically a thin wrapper over the engine with
// everything but Workers pinned; passing a permuted VD schedule through the
// closure turns the same oracle into the VD-permutation check.
func CheckDeterminism(rep *Report, run func(workers int) (*trace.Dataset, error), workerCounts ...int) {
	const law = "determinism/replay"
	if len(workerCounts) < 2 {
		rep.Addf(law, "need at least two worker counts to compare, got %d", len(workerCounts))
		return
	}
	var ref string
	for i, w := range workerCounts {
		ds, err := run(w)
		if err != nil {
			rep.Addf(law, "run with %d workers failed: %v", w, err)
			return
		}
		fp := Fingerprint(ds)
		if i == 0 {
			ref = fp
			continue
		}
		if fp != ref {
			rep.Addf(law, "dataset with %d workers diverges from %d workers (%s != %s)",
				w, workerCounts[0], fp[:12], ref[:12])
		}
	}
}
