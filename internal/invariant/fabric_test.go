package invariant

import (
	"strings"
	"testing"
)

// TestCheckFabricAccounting exercises the cross-process conservation law
// over healthy and broken ledgers.
func TestCheckFabricAccounting(t *testing.T) {
	ok := &ShardLedger{
		Dispatched: []int{1, 2, 1}, // shard 1 was speculated
		Returned:   []int{1, 2, 1},
		Accepted:   []int{1, 1, 1}, // the duplicate was dropped
	}
	var rep Report
	CheckFabricAccounting(&rep, ok)
	if !rep.OK() {
		t.Fatalf("healthy ledger violated: %s", rep.String())
	}

	cases := []struct {
		name string
		l    *ShardLedger
		want string
	}{
		{"never dispatched", &ShardLedger{Dispatched: []int{0}, Returned: []int{0}, Accepted: []int{1}}, "never dispatched"},
		{"double accept", &ShardLedger{Dispatched: []int{2}, Returned: []int{2}, Accepted: []int{2}}, "want exactly 1"},
		{"lost shard", &ShardLedger{Dispatched: []int{1}, Returned: []int{1}, Accepted: []int{0}}, "accepted 0"},
		{"accept from thin air", &ShardLedger{Dispatched: []int{1}, Returned: []int{0}, Accepted: []int{1}}, "only 0 returned"},
		{"return without dispatch", &ShardLedger{Dispatched: []int{1}, Returned: []int{2}, Accepted: []int{1}}, "from 1 dispatches"},
		{"shape mismatch", &ShardLedger{Dispatched: []int{1, 1}, Returned: []int{1}, Accepted: []int{1}}, "shape mismatch"},
	}
	for _, tc := range cases {
		var rep Report
		CheckFabricAccounting(&rep, tc.l)
		if rep.OK() {
			t.Fatalf("%s: ledger passed", tc.name)
		}
		if !strings.Contains(rep.String(), tc.want) {
			t.Fatalf("%s: report %q lacks %q", tc.name, rep.String(), tc.want)
		}
	}
}

// TestMergeEmissions pins the shard-emission merge: disjoint slots combine,
// overlapping non-zero slots flag a collision instead of double-counting.
func TestMergeEmissions(t *testing.T) {
	dst := NewEmission(4)
	a := NewEmission(4)
	a.PerVD[0] = VDEmission{Events: 3, ReadOps: 2, WriteOps: 1, ReadBytes: 8192, WriteBytes: 4096}
	b := NewEmission(4)
	b.PerVD[2] = VDEmission{Events: 1, WriteOps: 1, WriteBytes: 512}
	if MergeEmissions(dst, a) || MergeEmissions(dst, b) {
		t.Fatal("disjoint merge reported a collision")
	}
	if dst.PerVD[0] != a.PerVD[0] || dst.PerVD[2] != b.PerVD[2] {
		t.Fatalf("merged emission %+v lost shard slots", dst.PerVD)
	}
	if got := dst.Total(); got.Events != 4 {
		t.Fatalf("merged total %+v, want 4 events", got)
	}
	if !MergeEmissions(dst, a) {
		t.Fatal("overlapping merge did not report a collision")
	}
	if dst.PerVD[0].Events != 3 {
		t.Fatal("collision double-counted a slot")
	}
}

// TestCheckLeadershipContinuity exercises the control-plane election-safety
// law over healthy and broken leadership histories.
func TestCheckLeadershipContinuity(t *testing.T) {
	var rep Report
	CheckLeadershipContinuity(&rep, 3, []LeaderTransition{{Term: 1, Leader: 0}, {Term: 2, Leader: 1}})
	if !rep.OK() {
		t.Fatalf("healthy history violated: %s", rep.String())
	}

	cases := []struct {
		name    string
		history []LeaderTransition
		want    string
	}{
		{"empty history", nil, "no leader was ever established"},
		{"zero term", []LeaderTransition{{Term: 0, Leader: 0}}, "want >= 1"},
		{"repeated term", []LeaderTransition{{Term: 1, Leader: 0}, {Term: 1, Leader: 2}}, "does not increase"},
		{"regressing term", []LeaderTransition{{Term: 3, Leader: 0}, {Term: 2, Leader: 1}}, "does not increase"},
		{"phantom replica", []LeaderTransition{{Term: 1, Leader: 5}}, "outside the 3-replica set"},
		{"negative replica", []LeaderTransition{{Term: 1, Leader: -1}}, "outside the 3-replica set"},
	}
	for _, tc := range cases {
		var rep Report
		CheckLeadershipContinuity(&rep, 3, tc.history)
		if rep.OK() {
			t.Fatalf("%s: history passed", tc.name)
		}
		if !strings.Contains(rep.String(), tc.want) {
			t.Fatalf("%s: report %q lacks %q", tc.name, rep.String(), tc.want)
		}
	}
}
