module ebslab

go 1.22
