# Developer entry points. `make ci` is the gate: vet, the full test suite
# under the race detector on a short-window fleet (the tests build their own
# small fleets, so the race run stays fast — and it includes the netblock
# client-vs-server stress test with wire faults enabled), the golden-fixture
# drift check, a short randomized run of every fuzz target, coverage over the
# fault-injection packages, and a seeded chaos smoke run with the invariant
# checker.

GO ?= go
FUZZTIME ?= 5s

.PHONY: all build test race vet bench bench-gate golden golden-diff fuzz-smoke cover chaos-smoke sketch-accuracy-smoke dist-smoke dist-ha-smoke consensus-race gateway-smoke control-smoke scenario-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run. -short trims the slowest property tests where they
# opt in; every fleet used by the tests is already small. The invariant
# suites (runtime checker, metamorphic relations) ride along here.
race:
	$(GO) test -race -short ./...

# Engine scaling benchmark (the same simulation at 1, 2, and 4 workers),
# the streaming sketch ingest benchmark, whose flat B/op across an 8x
# record growth is the O(1)-memory evidence, and the fabric dispatch
# benchmark (coordinator + two loopback workers through the full
# join/dispatch/upload/merge cycle). The JSON stream is captured to
# BENCH_baseline.json for cross-run comparison (benchstat-compatible via
# `go tool test2json` consumers).
bench:
	$(GO) test -run xxx -bench 'BenchmarkSimWorkers|BenchmarkSketchIngest|BenchmarkReplayIngest|BenchmarkFabricDispatch|BenchmarkControlOverhead' -benchmem -json . | tee BENCH_baseline.json

# Performance regression gate: reruns the gated benchmarks and fails when
# any loses more than 10% ios-per-sec or grows allocs/op by more than 10%
# against BENCH_baseline.json. After an intentional performance change,
# promote the fresh numbers with `make bench-gate UPDATE_BASELINE=1` and
# commit the updated baseline.
bench-gate:
	$(GO) test -run xxx -bench 'BenchmarkSimWorkers|BenchmarkSketchIngest|BenchmarkReplayIngest|BenchmarkFabricDispatch|BenchmarkControlOverhead' -benchmem -json . > BENCH_current.json
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json -current BENCH_current.json $(if $(UPDATE_BASELINE),-update-baseline)
	@rm -f BENCH_current.json

# golden-diff fails when any figure/ablation statistic or the engine
# fingerprint drifts from the fixtures in internal/core/testdata/golden.
# After an intentional change, regenerate with `make golden` and commit the
# diff alongside the change that caused it.
golden-diff:
	$(GO) test ./internal/core -run 'TestGolden' -count=1
	$(GO) test ./internal/scenario -run 'TestGolden' -count=1

golden:
	$(GO) test ./internal/core -run 'TestGolden' -count=1 -update
	$(GO) test ./internal/scenario -run 'TestGolden' -count=1 -update

# Short randomized runs of the committed fuzz targets (seeds under each
# package's testdata/fuzz). `go test -fuzz` takes one target per
# invocation, so each gets its own.
fuzz-smoke:
	$(GO) test ./internal/trace -fuzz FuzzReadTraceCSV -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -fuzz FuzzReadMetricCSV -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -fuzz FuzzReadTraceJSONL -fuzztime $(FUZZTIME)
	$(GO) test ./internal/predict -fuzz FuzzEvaluatePredictors -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sketch -fuzz FuzzSpaceSavingAddMerge -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sketch -fuzz FuzzLogQuantileMerge -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sketch -fuzz FuzzSetCodec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/consensus -fuzz FuzzMessageCodec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/gateway -fuzz FuzzGatewayCodec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/scenario -fuzz FuzzReplayIngest -fuzztime $(FUZZTIME)

# Coverage over the fault-injection surface: the chaos layer itself plus
# every package it reaches into (RPC substrate, engine, balancer, throttle,
# invariants).
cover:
	$(GO) test -cover ./internal/chaos ./internal/netblock ./internal/ebs \
		./internal/balancer ./internal/throttle ./internal/invariant

# Short seeded chaos run with the invariant checker on: a recoverable fault
# schedule must pass every conservation law end to end.
chaos-smoke:
	$(GO) run ./cmd/ebssim -seed 7 -dur 20 -nodes 4 -max-vds 24 -chaos -check

# Exact-vs-streamed accuracy gate: one unthinned run scored both ways; every
# streamed metric must sit inside its documented error bound (top-K overlap
# >= 0.9, quantile relative error <= 2%).
sketch-accuracy-smoke:
	$(GO) test ./internal/ebs -run 'TestSketchAccuracySmoke' -count=1 -v

# Distributed-fabric gate: a coordinator plus two in-process loopback
# workers run the fleet in shards over the real netblock wire path, then
# the binary re-runs the same study single-process and fails unless the
# merged dataset and sketch fingerprints are byte-identical.
dist-smoke:
	$(GO) run ./cmd/ebssim -seed 7 -dur 15 -nodes 4 -max-vds 24 -dist 2 -shards 5 -check -stream

# High-availability variant: the coordinator is a 3-replica consensus group
# and the chaos plan kills the acting leader mid-run. A successor must be
# elected, the workers must fail over through redirects, and the merged
# dataset must STILL be byte-identical to the single-process run.
dist-ha-smoke:
	$(GO) run ./cmd/ebssim -seed 7 -dur 15 -nodes 4 -max-vds 24 -dist 2 -shards 5 -replicas 3 -leader-kill 1 -check

# Focused race-detector pass over the consensus core and the replicated
# fabric (leader election, log replication, kill-driven failover) without
# -short, so the full leader-kill golden scenario runs under the detector.
consensus-race:
	$(GO) test -race -count=1 ./internal/consensus ./internal/fabric

# Serving-plane gate: the ebsgate binary serves a gateway on loopback TCP,
# a protocol client submits one study through the full wire path and streams
# sketch snapshots while it runs, and the binary fails unless the served
# dataset and sketch fingerprints are byte-identical to a direct
# single-process run of the same spec.
gateway-smoke:
	$(GO) run ./cmd/ebsgate -selftest -seed 7 -dur 4 -nodes 2 -users 4 -max-vds 12

# Mitigation control-plane gate: the policy bake-off golden fixture (the
# predictive policy must beat reactive on imbalance under the pinned chaos
# plan, and noop must answer byte-identically to the uncontrolled run), the
# metamorphic worker-count invariance of the decision log, and one seeded
# predict->act CLI run under chaos with the invariant suite on.
control-smoke:
	$(GO) test ./internal/control/... -count=1
	$(GO) run ./cmd/ebssim -seed 7 -dur 24 -nodes 4 -max-vds 24 -control predictive -chaos -storms 4 -check

# Scenario-library gate: the scenario package suite (golden fixtures,
# worker-count determinism oracle, native replay round-trip, replay fuzz
# seeds), then the full scenario matrix end to end through the CLI with the
# invariant checker on — bufferbloat plain, batchburst under a chaos plan,
# elastic under the predictive control policy, and both committed foreign
# traces (MSR and tianchi schemas) through -replay.
scenario-smoke:
	$(GO) test ./internal/scenario -count=1
	$(GO) run ./cmd/ebssim -seed 7 -dur 12 -nodes 4 -max-vds 24 -scenario bufferbloat,period=8,duty=0.5 -check
	$(GO) run ./cmd/ebssim -seed 7 -dur 12 -nodes 4 -max-vds 24 -scenario batchburst,wave=6,width=2 -chaos -check
	$(GO) run ./cmd/ebssim -seed 7 -dur 12 -nodes 4 -max-vds 24 -scenario elastic,hi=2,step=3 -control predictive -check
	$(GO) run ./cmd/ebssim -seed 7 -dur 12 -nodes 4 -max-vds 24 -replay internal/scenario/testdata/msr_sample.csv -check
	$(GO) run ./cmd/ebssim -seed 7 -dur 12 -nodes 4 -max-vds 24 -replay internal/scenario/testdata/tianchi_sample.csv -check -stream

ci: vet race golden-diff fuzz-smoke cover chaos-smoke sketch-accuracy-smoke dist-smoke dist-ha-smoke consensus-race gateway-smoke control-smoke scenario-smoke bench-gate
