# Developer entry points. `make ci` is the gate: vet plus the full test
# suite under the race detector on a short-window fleet (the tests build
# their own small fleets, so the race run stays fast).

GO ?= go

.PHONY: all build test race vet bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run. -short trims the slowest property tests where they
# opt in; every fleet used by the tests is already small.
race:
	$(GO) test -race -short ./...

# Engine scaling benchmark: the same simulation at 1, 2, and 4 workers.
bench:
	$(GO) test -run xxx -bench 'BenchmarkSimWorkers' -benchmem .

ci: vet race
