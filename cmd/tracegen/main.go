// Command tracegen synthesizes an EBS fleet, runs the end-to-end stack
// simulation, and writes the two study datasets (sampled per-IO trace and
// full-scale per-second metrics) as CSV, in the schema of §2.3 / Table 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ebslab/internal/ebs"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "fleet generation seed")
		out      = flag.String("out", "dataset", "output directory")
		dur      = flag.Int("dur", 120, "observation window seconds")
		nodes    = flag.Int("nodes", 24, "compute nodes per DC")
		dcs      = flag.Int("dcs", 2, "data centers")
		maxVDs   = flag.Int("max-vds", 200, "virtual disks to simulate (0 = all)")
		sample   = flag.Int("sample", trace.SampleRate, "per-IO trace sampling (1 = trace everything)")
		evSample = flag.Int("event-sample", 4, "IO generation thinning for tractability")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.DCs = *dcs
	cfg.NodesPerDC = *nodes
	cfg.BSPerDC = 12
	cfg.BSPerCluster = 6
	cfg.Users = 20 * *dcs
	cfg.DurationSec = *dur

	fleet, err := workload.Generate(cfg)
	if err != nil {
		fatal("generate fleet: %v", err)
	}
	sim := ebs.New(fleet)
	ds, err := sim.Run(context.Background(), ebs.Options{
		DurationSec:      *dur,
		TraceSampleEvery: *sample,
		EventSampleEvery: *evSample,
		MaxVDs:           *maxVDs,
	})
	if err != nil {
		fatal("simulate: %v", err)
	}

	if err := trace.SaveDir(ds, *out); err != nil {
		fatal("save: %v", err)
	}
	fmt.Printf("wrote %s/{%s,%s,%s,%s,%s,%s}\n", *out,
		trace.FileTraceCSV, trace.FileTraceJSONL,
		trace.FileMetricCompute, trace.FileMetricStorage,
		trace.FileSpecVD, trace.FileSpecVM)
	fmt.Printf("dataset: %d trace records, %d compute rows, %d storage rows over %ds\n",
		len(ds.Trace), len(ds.Compute), len(ds.Storage), ds.DurationSec)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
