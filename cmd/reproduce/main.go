// Command reproduce runs the complete reproduction — every table, figure,
// and ablation — and writes a self-contained markdown report with the
// measured values, suitable for diffing against EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ebslab/internal/core"
	"ebslab/internal/hypervisor"
	"ebslab/internal/workload"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "fleet generation seed")
		out  = flag.String("out", "", "write the report here instead of stdout")
		fast = flag.Bool("fast", false, "small fleet / short window (CI mode)")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	if *fast {
		cfg.DCs = 2
		cfg.NodesPerDC = 40
		cfg.BSPerDC = 12
		cfg.Users = 60
		cfg.DurationSec = 240
	}
	start := time.Now()
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintf(w, "# Reproduction report (seed %d, %d DCs, %d VMs, %ds window)\n\n",
		cfg.Seed, cfg.DCs, len(study.Fleet.Topology.VMs), cfg.DurationSec)
	section := func(title, body string) {
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", title, body)
	}

	section("Table 2 — dataset summary", study.Table2Summary().Render())
	section("Table 3 — baseline statistics", study.Table3Baseline().Render())
	section("Table 4 — skewness by application", study.Table4ByApp().Render())

	section("Figure 2 — hypervisor load balancing",
		study.Fig2aWTCoV(nil).Render()+
			study.Fig2bThreeTier().Render()+
			study.Fig2cHottestQP().Render()+
			study.Fig2dRebinding(core.Fig2dOptions{}).Render()+
			study.Fig2efBurstSeries(core.Fig2efOptions{}).Render())

	section("Figure 3 — traffic throttle",
		study.Fig3aSingleVDCase().Render()+
			study.Fig3bRAR(false).Render()+
			study.Fig3bRAR(true).Render()+
			study.Fig3deReduction(core.Fig3deOptions{}).Render()+
			study.Fig3fgLendingGain(core.Fig3fgOptions{}).Render()+
			study.Fig3fgLendingGain(core.Fig3fgOptions{MultiVMNode: true}).Render())

	section("Figure 4 — storage-cluster balancing",
		study.Fig4aFrequentMigration(core.Fig4aOptions{}).Render()+
			study.Fig4bImporterSelection(core.Fig4bOptions{}).Render()+
			study.Fig4cPredictionMSE(core.Fig4cOptions{}).Render())

	section("Figure 5 — balanced write, skewed read",
		study.Fig5aReadWriteCoV(core.Fig5aOptions{}).Render()+
			study.Fig5bSegmentDominance(core.Fig5bOptions{}).Render()+
			study.Fig5cWriteThenRead(core.Fig5cOptions{}).Render())

	section("Figure 6 — LBA hotspots", study.Fig6HottestBlocks(core.Fig6Options{}).Render())
	section("Figure 7 — caching",
		study.Fig7aHitRatio(core.Fig7aOptions{}).Render()+
			study.Fig7bcLatencyGain(core.Fig7bcOptions{}).Render()+
			study.Fig7dSpaceUtilization(core.Fig7dOptions{}).Render())

	// Ablations.
	ablations := study.AblateHosting(core.HostingOptions{}).Render() +
		study.AblateCachePolicy(core.CachePolicyOptions{}).Render() +
		study.AblateCacheDeployment(core.CacheDeploymentOptions{}).Render() +
		study.AblatePredictors(core.PredictorOptions{}).Render() +
		study.AblateFailover(core.FailoverOptions{}).Render() +
		study.StudyPageCache(core.PageCacheOptions{}).Render()
	for _, p := range []int{1, 10, 50} {
		r := study.RebindWithConfig(core.RebindOptions{MaxNodes: 24, WinSec: 10, Config: hypervisor.RebindConfig{PeriodSlots: p, Trigger: 1.2, EvalSlots: 5}})
		ablations += fmt.Sprintf("Ablation: rebind period %d0 ms: improved %.1f%%, median gain %.2f, rebinds/slot %.4f\n",
			p, 100*r.FracImproved, r.MedianGain, r.MedianRatio/float64(p))
	}
	for _, pol := range []hypervisor.DispatchPolicy{
		hypervisor.DispatchSingleWT, hypervisor.DispatchLeastLoaded, hypervisor.DispatchRoundRobinIO,
	} {
		r := study.AblateDispatch(core.DispatchOptions{MaxNodes: 24, WinSec: 10, Policy: pol})
		ablations += fmt.Sprintf("Ablation: dispatch %s: median WT-CoV %.2f, %d sync ops over %d nodes\n",
			pol, r.MedianCoV, r.SyncOps, r.Nodes)
	}
	section("Ablations", ablations)

	fmt.Fprintf(w, "_Generated in %v._\n", time.Since(start).Round(time.Second))
}
