// Command reproduce runs the complete reproduction — every table, figure,
// and ablation — and writes a self-contained markdown report with the
// measured values, suitable for diffing against EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ebslab/internal/core"
	"ebslab/internal/guestcache"
	"ebslab/internal/hypervisor"
	"ebslab/internal/workload"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "fleet generation seed")
		out  = flag.String("out", "", "write the report here instead of stdout")
		fast = flag.Bool("fast", false, "small fleet / short window (CI mode)")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	if *fast {
		cfg.DCs = 2
		cfg.NodesPerDC = 40
		cfg.BSPerDC = 12
		cfg.Users = 60
		cfg.DurationSec = 240
	}
	start := time.Now()
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintf(w, "# Reproduction report (seed %d, %d DCs, %d VMs, %ds window)\n\n",
		cfg.Seed, cfg.DCs, len(study.Fleet.Topology.VMs), cfg.DurationSec)
	section := func(title, body string) {
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", title, body)
	}

	section("Table 2 — dataset summary", study.Table2Summary().Render())
	section("Table 3 — baseline statistics", study.Table3Baseline().Render())
	section("Table 4 — skewness by application", study.Table4ByApp().Render())

	section("Figure 2 — hypervisor load balancing",
		study.Fig2aWTCoV(nil).Render()+
			study.Fig2bThreeTier().Render()+
			study.Fig2cHottestQP().Render()+
			study.Fig2dRebinding(0, 0).Render()+
			study.Fig2efBurstSeries(0, 0).Render())

	section("Figure 3 — traffic throttle",
		study.Fig3aSingleVDCase().Render()+
			study.Fig3bRAR(false).Render()+
			study.Fig3bRAR(true).Render()+
			study.Fig3deReduction(false, nil).Render()+
			study.Fig3fgLendingGain(false, nil, 0).Render()+
			study.Fig3fgLendingGain(true, nil, 0).Render())

	section("Figure 4 — storage-cluster balancing",
		study.Fig4aFrequentMigration(0, nil).Render()+
			study.Fig4bImporterSelection(0).Render()+
			study.Fig4cPredictionMSE(0, 0).Render())

	section("Figure 5 — balanced write, skewed read",
		study.Fig5aReadWriteCoV(0).Render()+
			study.Fig5bSegmentDominance(0).Render()+
			study.Fig5cWriteThenRead(0).Render())

	section("Figure 6 — LBA hotspots", study.Fig6HottestBlocks(0, 0).Render())
	section("Figure 7 — caching",
		study.Fig7aHitRatio(0, 0).Render()+
			study.Fig7bcLatencyGain(0, 0, 0).Render()+
			study.Fig7dSpaceUtilization(0).Render())

	// Ablations.
	ablations := study.AblateHosting(0, 0).Render() +
		study.AblateCachePolicy(0, 0, 0).Render() +
		study.AblateCacheDeployment(0, 0, 0, 0).Render() +
		study.AblatePredictors(0).Render() +
		study.AblateFailover(0).Render() +
		study.StudyPageCache(0, 0, 0, guestcache.Config{}).Render()
	for _, p := range []int{1, 10, 50} {
		r := study.RebindWithConfig(24, 10, hypervisor.RebindConfig{PeriodSlots: p, Trigger: 1.2, EvalSlots: 5})
		ablations += fmt.Sprintf("Ablation: rebind period %d0 ms: improved %.1f%%, median gain %.2f, rebinds/slot %.4f\n",
			p, 100*r.FracImproved, r.MedianGain, r.MedianRatio/float64(p))
	}
	for _, pol := range []hypervisor.DispatchPolicy{
		hypervisor.DispatchSingleWT, hypervisor.DispatchLeastLoaded, hypervisor.DispatchRoundRobinIO,
	} {
		r := study.AblateDispatch(24, 10, pol)
		ablations += fmt.Sprintf("Ablation: dispatch %s: median WT-CoV %.2f, %d sync ops over %d nodes\n",
			pol, r.MedianCoV, r.SyncOps, r.Nodes)
	}
	section("Ablations", ablations)

	fmt.Fprintf(w, "_Generated in %v._\n", time.Since(start).Round(time.Second))
}
