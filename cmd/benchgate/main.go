// Command benchgate compares a fresh benchmark run against the committed
// baseline (both as `go test -json` streams, the format `make bench` writes
// to BENCH_baseline.json) and fails when the hot path regresses: an
// ios-per-sec drop or an allocs/op growth beyond the tolerance on any
// benchmark present in both files. After an intentional performance change,
// rerun with -update-baseline to promote the current run to the new
// baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type options struct {
	baseline string
	current  string
	update   bool
	// tolerance is the allowed relative drift: 0.10 passes anything within
	// 10% of the baseline in the bad direction.
	tolerance float64
	// allocSlack absorbs tiny absolute alloc jitter on benchmarks with very
	// few allocations, where one stray allocation would exceed 10%.
	allocSlack float64
}

// result holds one benchmark's gated metrics. NaN-free: absent metrics are
// tracked with the ok flags.
type result struct {
	iosPerSec   float64
	hasIOs      bool
	allocsPerOp float64
	hasAllocs   bool
}

func main() {
	var opts options
	flag.StringVar(&opts.baseline, "baseline", "BENCH_baseline.json", "baseline `go test -json` stream")
	flag.StringVar(&opts.current, "current", "BENCH_current.json", "current `go test -json` stream")
	flag.BoolVar(&opts.update, "update-baseline", false, "promote the current run to the baseline instead of gating")
	flag.Float64Var(&opts.tolerance, "tolerance", 0.10, "allowed relative regression per metric")
	flag.Float64Var(&opts.allocSlack, "alloc-slack", 2, "absolute allocs/op growth always tolerated")
	flag.Parse()

	if opts.update {
		if err := promote(opts.current, opts.baseline); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("benchgate: %s promoted to %s\n", opts.current, opts.baseline)
		return
	}

	base, err := parseBenchJSON(opts.baseline)
	if err != nil {
		fatal("parse baseline: %v", err)
	}
	cur, err := parseBenchJSON(opts.current)
	if err != nil {
		fatal("parse current: %v", err)
	}
	if len(base) == 0 {
		fatal("baseline %s holds no benchmark results", opts.baseline)
	}
	if len(cur) == 0 {
		fatal("current %s holds no benchmark results", opts.current)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal("no benchmark appears in both %s and %s", opts.baseline, opts.current)
	}

	var failures []string
	for _, name := range names {
		b, c := base[name], cur[name]
		if b.hasIOs && c.hasIOs {
			floor := b.iosPerSec * (1 - opts.tolerance)
			status := "ok"
			if c.iosPerSec < floor {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"%s: ios-per-sec %.0f is below %.0f (baseline %.0f - %.0f%%)",
					name, c.iosPerSec, floor, b.iosPerSec, 100*opts.tolerance))
			}
			fmt.Printf("benchgate: %-44s ios-per-sec %12.0f  baseline %12.0f  %s\n", name, c.iosPerSec, b.iosPerSec, status)
		}
		if b.hasAllocs && c.hasAllocs {
			ceil := b.allocsPerOp*(1+opts.tolerance) + opts.allocSlack
			status := "ok"
			if c.allocsPerOp > ceil {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op %.0f exceeds %.0f (baseline %.0f + %.0f%% + %.0f)",
					name, c.allocsPerOp, ceil, b.allocsPerOp, 100*opts.tolerance, opts.allocSlack))
			}
			fmt.Printf("benchgate: %-44s allocs/op   %12.0f  baseline %12.0f  %s\n", name, c.allocsPerOp, b.allocsPerOp, status)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		fmt.Fprintf(os.Stderr, "benchgate: intentional? rerun `make bench-gate UPDATE_BASELINE=1` and commit the new baseline\n")
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within %.0f%% of baseline\n", len(names), 100*opts.tolerance)
}

// event is the subset of the `go test -json` stream benchgate reads.
type event struct {
	Action string
	Output string
}

// parseBenchJSON extracts benchmark results from a `go test -json` stream.
// The test binary's output is chunked into Output events at arbitrary byte
// boundaries — a single benchmark result line routinely spans two events —
// so the events are concatenated first and split into lines after.
func parseBenchJSON(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var out strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("%s: not a `go test -json` stream: %w", path, err)
		}
		if ev.Action == "output" {
			out.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	results := make(map[string]result)
	for _, line := range strings.Split(out.String(), "\n") {
		name, r, ok := parseBenchLine(line)
		if ok {
			results[name] = r
		}
	}
	return results, nil
}

// parseBenchLine parses one benchmark result line, e.g.
//
//	BenchmarkSimWorkers/workers=1  387  3059294 ns/op  207564 ios-per-sec  1378752 B/op  1297 allocs/op
//
// returning the gated metrics. Lines that are not benchmark results (or
// carry neither gated metric) report ok=false.
func parseBenchLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || !strings.Contains(line, "ns/op") {
		return "", result{}, false
	}
	var r result
	for i := 1; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ios-per-sec":
			r.iosPerSec, r.hasIOs = v, true
		case "allocs/op":
			r.allocsPerOp, r.hasAllocs = v, true
		}
	}
	if !r.hasIOs && !r.hasAllocs {
		return "", result{}, false
	}
	return fields[0], r, true
}

// promote copies current over baseline, validating it parses first so a
// broken run cannot wipe the committed baseline.
func promote(current, baseline string) error {
	results, err := parseBenchJSON(current)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("%s holds no benchmark results; refusing to overwrite %s", current, baseline)
	}
	data, err := os.ReadFile(current)
	if err != nil {
		return err
	}
	return os.WriteFile(baseline, data, 0o644)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
