// Command analyze generates a synthetic EBS fleet and runs the paper's
// analyses over it, printing paper-style tables. Select experiments with
// -run (comma-separated ids from DESIGN.md: t2,t3,t4,f2,f3,f4,f5,f6,f7) or
// run everything with -run all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ebslab/internal/core"
	"ebslab/internal/workload"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "fleet generation seed")
		scale = flag.String("scale", "medium", "fleet scale: small | medium | large")
		dur   = flag.Int("dur", 0, "observation window seconds (0 = scale default)")
		run   = flag.String("run", "all", "experiments to run (comma list: t2,t3,t4,f2,f3,f4,f5,f6,f7,ab)")
		quiet = flag.Bool("q", false, "suppress progress timing")
	)
	flag.Parse()

	cfg, err := configForScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Seed = *seed
	if *dur > 0 {
		cfg.DurationSec = *dur
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generate fleet:", err)
		os.Exit(1)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	type step struct {
		id string
		fn func() string
	}
	steps := []step{
		{"t2", func() string { return study.Table2Summary().Render() }},
		{"t3", func() string { return study.Table3Baseline().Render() }},
		{"t4", func() string { return study.Table4ByApp().Render() }},
		{"f2", func() string {
			var b strings.Builder
			b.WriteString(study.Fig2aWTCoV(nil).Render())
			b.WriteString(study.Fig2bThreeTier().Render())
			b.WriteString(study.Fig2cHottestQP().Render())
			b.WriteString(study.Fig2dRebinding(core.Fig2dOptions{}).Render())
			b.WriteString(study.Fig2efBurstSeries(core.Fig2efOptions{}).Render())
			return b.String()
		}},
		{"f3", func() string {
			var b strings.Builder
			b.WriteString(study.Fig3aSingleVDCase().Render())
			b.WriteString(study.Fig3bRAR(false).Render())
			b.WriteString(study.Fig3bRAR(true).Render())
			b.WriteString(study.Fig3deReduction(core.Fig3deOptions{}).Render())
			b.WriteString(study.Fig3fgLendingGain(core.Fig3fgOptions{}).Render())
			b.WriteString(study.Fig3fgLendingGain(core.Fig3fgOptions{MultiVMNode: true}).Render())
			return b.String()
		}},
		{"f4", func() string {
			var b strings.Builder
			b.WriteString(study.Fig4aFrequentMigration(core.Fig4aOptions{}).Render())
			b.WriteString(study.Fig4bImporterSelection(core.Fig4bOptions{}).Render())
			b.WriteString(study.Fig4cPredictionMSE(core.Fig4cOptions{}).Render())
			return b.String()
		}},
		{"f5", func() string {
			var b strings.Builder
			b.WriteString(study.Fig5aReadWriteCoV(core.Fig5aOptions{}).Render())
			b.WriteString(study.Fig5bSegmentDominance(core.Fig5bOptions{}).Render())
			b.WriteString(study.Fig5cWriteThenRead(core.Fig5cOptions{}).Render())
			return b.String()
		}},
		{"f6", func() string { return study.Fig6HottestBlocks(core.Fig6Options{}).Render() }},
		{"f7", func() string {
			var b strings.Builder
			b.WriteString(study.Fig7aHitRatio(core.Fig7aOptions{}).Render())
			b.WriteString(study.Fig7bcLatencyGain(core.Fig7bcOptions{}).Render())
			b.WriteString(study.Fig7dSpaceUtilization(core.Fig7dOptions{}).Render())
			return b.String()
		}},
		{"ab", func() string {
			var b strings.Builder
			b.WriteString(study.AblateHosting(core.HostingOptions{}).Render())
			b.WriteString(study.AblateCachePolicy(core.CachePolicyOptions{}).Render())
			b.WriteString(study.AblateCacheDeployment(core.CacheDeploymentOptions{}).Render())
			b.WriteString(study.AblatePredictors(core.PredictorOptions{}).Render())
			b.WriteString(study.AblateFailover(core.FailoverOptions{}).Render())
			b.WriteString(study.StudyPageCache(core.PageCacheOptions{}).Render())
			return b.String()
		}},
	}
	for _, st := range steps {
		if !sel(st.id) {
			continue
		}
		start := time.Now()
		out := st.fn()
		fmt.Print(out)
		if !*quiet {
			fmt.Printf("  [%s in %v]\n\n", st.id, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Println()
		}
	}
}

// configForScale returns fleet configurations at three sizes.
func configForScale(scale string) (workload.Config, error) {
	cfg := workload.DefaultConfig()
	switch scale {
	case "large":
		cfg.NodesPerDC = 240
		cfg.BSPerDC = 36
		cfg.Users = 300
		cfg.DurationSec = 1800
	case "medium":
		// DefaultConfig is the medium scale.
	case "small":
		cfg.NodesPerDC = 40
		cfg.BSPerDC = 12
		cfg.Users = 60
		cfg.DurationSec = 300
	default:
		return cfg, fmt.Errorf("unknown scale %q (want small|medium|large)", scale)
	}
	return cfg, nil
}
