package main

import (
	"strings"
	"testing"
)

// TestValidateFlagsMatrix walks the (-dist, -replicas, -leader-kill) matrix
// plus the role-conflict corners: every contradictory combination must be
// rejected with an error naming the flags involved, and every sensible one
// accepted.
func TestValidateFlagsMatrix(t *testing.T) {
	cases := []struct {
		name    string
		f       roleFlags
		wantErr []string // substrings the error must carry; empty = valid
	}{
		{"single process", roleFlags{replicas: 1}, nil},
		{"dist", roleFlags{dist: 2, replicas: 1}, nil},
		{"dist sharded replicas", roleFlags{dist: 2, replicas: 3}, nil},
		{"dist one kill", roleFlags{dist: 2, replicas: 3, leaderKill: 1}, nil},
		{"dist two kills five replicas", roleFlags{dist: 4, replicas: 5, leaderKill: 2}, nil},
		{"tcp coordinator", roleFlags{workersAddr: ":9000", replicas: 1}, nil},
		{"tcp replicated coordinator", roleFlags{workersAddr: ":9000", replicas: 1, peers: ":9000,:9001,:9002", replicaID: 1}, nil},
		{"tcp worker", roleFlags{serveAddr: ":9000", replicas: 1}, nil},
		{"scenario", roleFlags{replicas: 1, scenario: "bufferbloat"}, nil},
		{"scenario with params", roleFlags{replicas: 1, scenario: "elastic,step=10,hi=2"}, nil},
		{"scenario with control", roleFlags{replicas: 1, scenario: "batchburst", control: "predictive"}, nil},
		{"scenario with dist", roleFlags{dist: 2, replicas: 1, scenario: "bufferbloat"}, nil},
		{"replay", roleFlags{replicas: 1, replay: "testdata/trace.jsonl"}, nil},

		{"dist and workers-addr conflict", roleFlags{dist: 2, workersAddr: ":9000", replicas: 1},
			[]string{"-dist", "-workers-addr"}},
		{"serve and dist conflict", roleFlags{serveAddr: ":9000", dist: 2, replicas: 1},
			[]string{"-serve", "-dist"}},
		{"serve and workers-addr conflict", roleFlags{serveAddr: ":9000", workersAddr: ":9001", replicas: 1},
			[]string{"-serve", "-workers-addr"}},
		{"zero replicas", roleFlags{replicas: 0}, []string{"-replicas"}},
		{"replicas without a fabric", roleFlags{replicas: 3}, []string{"-replicas", "-dist"}},
		{"peers without workers-addr", roleFlags{replicas: 1, peers: ":9000,:9001"},
			[]string{"-peers", "-workers-addr"}},
		{"replica-id without peers", roleFlags{workersAddr: ":9000", replicas: 1, replicaID: 1},
			[]string{"-replica-id", "-peers"}},
		{"negative kills", roleFlags{dist: 2, replicas: 3, leaderKill: -1}, []string{"-leader-kill"}},
		{"kill without dist", roleFlags{replicas: 1, leaderKill: 1}, []string{"-leader-kill", "-dist"}},
		{"kill without quorum", roleFlags{dist: 2, replicas: 1, leaderKill: 1},
			[]string{"-leader-kill", "-replicas"}},
		{"kill beyond quorum headroom", roleFlags{dist: 2, replicas: 3, leaderKill: 2},
			[]string{"3-replica", "at most 1"}},
		{"kill beyond quorum headroom five replicas", roleFlags{dist: 2, replicas: 5, leaderKill: 3},
			[]string{"5-replica", "at most 2"}},
		{"scenario and replay conflict", roleFlags{replicas: 1, scenario: "bufferbloat", replay: "x"},
			[]string{"-scenario", "-replay"}},
		{"replay with dist", roleFlags{dist: 2, replicas: 1, replay: "x"},
			[]string{"-replay", "-dist"}},
		{"replay scenario with workers-addr", roleFlags{workersAddr: ":9000", replicas: 1, scenario: "replay,path=x"},
			[]string{"-workers-addr", "single-process"}},
		{"unknown scenario", roleFlags{replicas: 1, scenario: "quakestorm"},
			[]string{"quakestorm"}},
		{"bad scenario param", roleFlags{replicas: 1, scenario: "elastic,bogus=1"},
			[]string{"bogus"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.f)
			if len(tc.wantErr) == 0 {
				if err != nil {
					t.Fatalf("valid combination rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("contradictory combination accepted")
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not name %q", err, want)
				}
			}
		})
	}
}
