// Command ebssim runs the end-to-end EBS stack simulation and reports
// stack-level statistics: per-stage latency percentiles, worker-thread
// balance, throttle pressure, and storage-node traffic spread.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"

	"ebslab/internal/chaos"
	"ebslab/internal/cluster"
	"ebslab/internal/control"
	"ebslab/internal/ebs"
	"ebslab/internal/fabric"
	"ebslab/internal/invariant"
	"ebslab/internal/netblock"
	"ebslab/internal/report"
	"ebslab/internal/scenario"
	"ebslab/internal/sketch"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// roleFlags is the slice of the flag set that selects an execution role:
// single-process run, in-process fabric (-dist), TCP coordinator
// (-workers-addr, optionally replicated via -peers/-replica-id), or TCP
// worker (-serve). Exactly one role may be selected.
type roleFlags struct {
	dist        int
	workersAddr string
	serveAddr   string
	replicas    int
	leaderKill  int
	replicaID   int
	peers       string
	control     string
	epochSec    int
	scenario    string
	replay      string
}

// validateFlags rejects contradictory role selections up front, naming every
// flag involved so the exit is actionable instead of one role silently
// winning over the other.
func validateFlags(f roleFlags) error {
	if f.serveAddr != "" {
		if f.dist > 0 || f.workersAddr != "" {
			return fmt.Errorf("-serve selects the worker role, which conflicts with the coordinator roles -dist and -workers-addr: pass exactly one of -serve, -dist, -workers-addr")
		}
		return nil // worker role takes every simulation flag from the coordinator
	}
	if f.dist > 0 && f.workersAddr != "" {
		return fmt.Errorf("-dist runs the fabric in-process and -workers-addr serves it over TCP: the roles conflict, pass exactly one of -dist, -workers-addr")
	}
	if f.replicas < 1 {
		return fmt.Errorf("-replicas %d: want >= 1", f.replicas)
	}
	if f.replicas > 1 && f.dist == 0 {
		return fmt.Errorf("-replicas %d replicates the in-process control plane and needs -dist (for TCP replication use -workers-addr with -peers)", f.replicas)
	}
	if f.peers != "" && f.workersAddr == "" {
		return fmt.Errorf("-peers replicates the TCP coordinator and needs -workers-addr")
	}
	if f.replicaID != 0 && f.peers == "" {
		return fmt.Errorf("-replica-id %d needs -peers (it indexes this coordinator into the peer list)", f.replicaID)
	}
	if f.leaderKill < 0 {
		return fmt.Errorf("-leader-kill %d: want >= 0", f.leaderKill)
	}
	if f.leaderKill > 0 {
		if f.dist == 0 || f.replicas < 2 {
			return fmt.Errorf("-leader-kill needs -dist and -replicas >= 2")
		}
		if max := (f.replicas - 1) / 2; f.leaderKill > max {
			return fmt.Errorf("a %d-replica control plane survives at most %d leader kills, got -leader-kill %d",
				f.replicas, max, f.leaderKill)
		}
	}
	if f.control != "" {
		if f.dist > 0 || f.workersAddr != "" || f.replicas > 1 {
			return fmt.Errorf("-control runs the sequential predict->act loop in-process, which conflicts with the distributed roles -dist, -workers-addr, -replicas")
		}
		if _, err := control.ByName(f.control); err != nil {
			return err
		}
	} else if f.epochSec != 0 {
		return fmt.Errorf("-epoch-sec needs -control")
	}
	if f.epochSec < 0 {
		return fmt.Errorf("-epoch-sec %d: want >= 0 (0 = an eighth of -dur)", f.epochSec)
	}
	if f.scenario != "" && f.replay != "" {
		return fmt.Errorf("-replay is shorthand for -scenario replay,path=...: pass exactly one of -scenario, -replay")
	}
	spec := f.scenario
	if f.replay != "" {
		spec = "replay,path=" + f.replay
	}
	if spec != "" {
		// Build validates the spec statically; replay trace files are only
		// opened later, at bind time.
		built, err := scenario.Build(spec)
		if err != nil {
			return err
		}
		if built.Name() == "replay" && (f.dist > 0 || f.workersAddr != "") {
			return fmt.Errorf("-replay (and -scenario replay,...) reads a local trace file, which the distributed roles -dist and -workers-addr cannot ship to workers: replay runs are single-process")
		}
	}
	return nil
}

func main() {
	var (
		seed    = flag.Int64("seed", 1, "fleet generation seed")
		dur     = flag.Int("dur", 60, "observation window seconds")
		nodes   = flag.Int("nodes", 16, "compute nodes per DC")
		maxVDs  = flag.Int("max-vds", 120, "virtual disks to simulate (0 = all)")
		workers = flag.Int("workers", 0, "simulation workers (0 = one per CPU)")
		verbose = flag.Bool("progress", false, "print simulation progress")
		check   = flag.Bool("check", false, "run the invariant suite over the run (conservation laws, throttle audit)")
		stream  = flag.Bool("stream", false, "fold every IO into O(1)-memory streaming sketches and report online skewness metrics with an exact-vs-sketch accuracy table")

		workersAddr = flag.String("workers-addr", "", "run as fabric coordinator: listen on this address for ebsd/-serve workers and merge their shard results")
		serveAddr   = flag.String("serve", "", "run as fabric worker: join the coordinator at this address and execute shards (all simulation flags are taken from the coordinator)")
		dist        = flag.Int("dist", 0, "run the fabric in-process over a loopback transport with this many workers and verify the merged dataset against a single-process run")
		shards      = flag.Int("shards", 0, "fabric shard count (0 = default)")
		replicas    = flag.Int("replicas", 1, "with -dist: replicate the coordinator control plane across this many consensus-backed replicas")
		leaderKill  = flag.Int("leader-kill", 0, "with -dist and -replicas >= 2: schedule this many chaos leader kills; the run must still match single-process bit for bit")
		replicaID   = flag.Int("replica-id", 0, "with -workers-addr and -peers: this coordinator's replica ID")
		peers       = flag.String("peers", "", "with -workers-addr: comma-separated control-plane addresses of every replica, indexed by replica ID (replicates the coordinator over TCP)")

		controlPol = flag.String("control", "", "run the study through the mitigation control plane under this policy (noop, reactive, predictive[-holt|-arima|-gbt], oracle) and report imbalance before/after actuation")
		epochSec   = flag.Int("epoch-sec", 0, "with -control: control epoch length in seconds (0 = an eighth of -dur, at least 1)")

		scenarioSpec = flag.String("scenario", "", "reshape the fleet's traffic with a scenario-library spec string (one of: "+strings.Join(scenario.Names(), ", ")+"; e.g. \"bufferbloat\", \"elastic,step=10,hi=2\"); composes with -chaos, -control, -stream, -check, and (except replay) -dist")
		replayPath   = flag.String("replay", "", "replay a trace file through the full stack; shorthand for -scenario replay,path=PATH (native trace.jsonl/trace.csv, MSR, and tianchi schemas are auto-detected)")

		chaosOn     = flag.Bool("chaos", false, "inject a deterministic fault schedule (see -crashes, -storms, ...)")
		chaosSeed   = flag.Int64("chaos-seed", 0, "fault schedule seed (0 = follow -seed)")
		crashes     = flag.Int("crashes", 2, "BlockServer crash-and-recover windows to schedule")
		downSec     = flag.Int("down-sec", 5, "mean crash window length in seconds")
		penaltyUS   = flag.Float64("penalty-us", 0, "frontend-net latency penalty (us) for IOs hitting a crashed BS (0 = observe only)")
		storms      = flag.Int("storms", 1, "hot-tenant traffic storms to schedule")
		stormFactor = flag.Float64("storm-factor", 8, "demand multiplier inside a storm window")
	)
	flag.Parse()

	if err := validateFlags(roleFlags{
		dist:        *dist,
		workersAddr: *workersAddr,
		serveAddr:   *serveAddr,
		replicas:    *replicas,
		leaderKill:  *leaderKill,
		replicaID:   *replicaID,
		peers:       *peers,
		control:     *controlPol,
		epochSec:    *epochSec,
		scenario:    *scenarioSpec,
		replay:      *replayPath,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ebssim:", err)
		os.Exit(2)
	}
	if *serveAddr != "" {
		runWorkerRole(*serveAddr)
		return
	}

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.DCs = 1
	cfg.NodesPerDC = *nodes
	cfg.BSPerDC = 12
	cfg.BSPerCluster = 6
	cfg.Users = 16
	cfg.DurationSec = *dur

	fleet, err := workload.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebssim:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := ebs.Options{
		DurationSec:      *dur,
		TraceSampleEvery: 1,
		EventSampleEvery: 8,
		MaxVDs:           *maxVDs,
		Workers:          *workers,
		Check:            *check,
	}
	var sketchSet *sketch.Set
	if *stream {
		sketchSet = sketch.NewSet(sketch.Config{})
		opts.Stream = sketchSet
	}
	var chaosStats chaos.Stats
	if *chaosOn {
		opts.Chaos = &chaos.Plan{
			Seed:              *chaosSeed,
			BSCrashes:         *crashes,
			MeanDownSec:       *downSec,
			FailoverPenaltyUS: *penaltyUS,
			Storms:            *storms,
			StormFactor:       *stormFactor,
			Recoverable:       true,
		}
		opts.ChaosStats = &chaosStats
	}
	if *verbose {
		opts.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "simulated %d/%d VDs\n", done, total)
			}
		}
	}
	specStr := *scenarioSpec
	if *replayPath != "" {
		specStr = "replay,path=" + *replayPath
	}
	var scWL scenario.Workload
	if specStr != "" && *dist == 0 && *workersAddr == "" {
		// Local execution binds the scenario here; the distributed roles ship
		// the spec string instead and every worker binds it to its own
		// regenerated fleet.
		built, berr := scenario.Build(specStr)
		if berr == nil {
			scWL, berr = built.Bind(fleet)
		}
		if berr != nil {
			fmt.Fprintln(os.Stderr, "ebssim:", berr)
			os.Exit(1)
		}
		opts.Scenario = scWL
		if es, ok := scWL.(interface{ EventSampleEvery() int }); ok {
			// Replay ingest already thinned the stream: tell the engine the
			// rate so metric rows re-inflate to full-trace estimates.
			opts.EventSampleEvery = es.EventSampleEvery()
		}
	}
	var ds *trace.Dataset
	switch {
	case *controlPol != "":
		ds, err = runControlled(ctx, fleet, opts, *controlPol, *epochSec)
	case *dist > 0:
		ds, err = runDistVerified(ctx, cfg, opts, specStr, *dist, *shards, *replicas, *leaderKill)
	case *workersAddr != "":
		ds, err = runCoordinator(ctx, cfg, opts, specStr, *workersAddr, *shards, *replicaID, *peers)
	default:
		ds, err = ebs.New(fleet).Run(ctx, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebssim:", err)
		os.Exit(1)
	}
	fmt.Printf("simulated %d IOs over %ds (%d VDs)\n", len(ds.Trace), *dur, *maxVDs)
	if scWL != nil {
		fmt.Printf("scenario: %s\n", scWL.Spec())
		if rp, ok := scWL.(*scenario.Replay); ok {
			st := rp.Stats()
			fmt.Printf("  replay: schema %s, %d records parsed, %d kept (1/%d), %d reordered, %d clamped\n",
				st.Schema, st.Records, st.Kept, rp.EventSampleEvery(), st.Reordered, st.Clamped)
		}
	} else if specStr != "" {
		fmt.Printf("scenario: %s (bound per fabric worker)\n", specStr)
	}
	if *check {
		fmt.Println("invariant suite: all conservation laws hold")
	}
	if *chaosOn {
		sched := opts.Chaos.Expand(*seed, chaos.Shape{
			BSs:    len(fleet.Topology.StorageNodes),
			VDs:    len(fleet.Topology.VDs),
			DurSec: *dur,
		})
		fmt.Println(sched)
		fmt.Println(chaosStats)
	}
	fmt.Println()

	if *stream {
		printStream(sketchSet, ds)
	}

	// Per-stage latency percentiles.
	fmt.Println("latency by stage (us):")
	fmt.Printf("  %-14s %8s %8s %8s\n", "stage", "p50", "p99", "mean")
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		var xs []float64
		for i := range ds.Trace {
			xs = append(xs, float64(ds.Trace[i].Latency[st]))
		}
		fmt.Printf("  %-14s %8.0f %8.0f %8.0f\n", st,
			stats.Quantile(xs, 0.5), stats.Quantile(xs, 0.99), stats.Mean(xs))
	}
	var e2e []float64
	for i := range ds.Trace {
		e2e = append(e2e, ds.Trace[i].TotalLatency())
	}
	fmt.Printf("  %-14s %8.0f %8.0f %8.0f\n\n", "end-to-end",
		stats.Quantile(e2e, 0.5), stats.Quantile(e2e, 0.99), stats.Mean(e2e))

	// Worker-thread balance per node (top 5 busiest nodes).
	type nodeLoad struct {
		node cluster.NodeID
		wt   map[int8]float64
		tot  float64
	}
	loads := map[cluster.NodeID]*nodeLoad{}
	for i := range ds.Trace {
		r := &ds.Trace[i]
		nl := loads[r.Node]
		if nl == nil {
			nl = &nodeLoad{node: r.Node, wt: map[int8]float64{}}
			loads[r.Node] = nl
		}
		nl.wt[r.WT] += float64(r.Size)
		nl.tot += float64(r.Size)
	}
	var ranked []*nodeLoad
	for _, nl := range loads {
		ranked = append(ranked, nl)
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].tot > ranked[j].tot })
	fmt.Println("worker-thread balance (busiest nodes):")
	for i, nl := range ranked {
		if i >= 5 {
			break
		}
		var xs []float64
		for wt := 0; wt < fleet.Topology.Nodes[nl.node].WorkerNum; wt++ {
			xs = append(xs, nl.wt[int8(wt)])
		}
		fmt.Printf("  node %3d: %6.1f MiB total, WT-CoV %.2f\n",
			nl.node, nl.tot/(1<<20), stats.NormCoV(xs))
	}

	// Storage-node spread.
	perSN := map[cluster.StorageNodeID]float64{}
	for i := range ds.Trace {
		perSN[ds.Trace[i].Storage] += float64(ds.Trace[i].Size)
	}
	var snLoads []float64
	for _, v := range perSN {
		snLoads = append(snLoads, v)
	}
	fmt.Printf("\nstorage nodes touched: %d, inter-BS CoV %.2f\n", len(snLoads), stats.NormCoV(snLoads))
}

// printStream reports the online skewness metrics computed from the merged
// sketch state and scores them against the exact batch recomputation over
// the retained dataset.
func printStream(set *sketch.Set, ds *trace.Dataset) {
	sk := set.Skewness()
	fmt.Println("streaming skewness (sketch state only):")
	rows := [][2]string{
		{"IOs / bytes", fmt.Sprintf("%d / %.1f MiB", sk.IOs, sk.Bytes/(1<<20))},
		{"1%-CCR / 10%-CCR (VDs)", fmt.Sprintf("%.3f / %.3f", sk.CCR1, sk.CCR10)},
		{"NormCoV (VDs)", fmt.Sprintf("%.3f", sk.NormCoV)},
		{"P2A read / write / total", fmt.Sprintf("%.2f / %.2f / %.2f", sk.P2ARead, sk.P2AWrite, sk.P2ATotal)},
		{"EWMA Bps / mean RAR", fmt.Sprintf("%.3g / %.3f", sk.EWMABps, sk.MeanRAR)},
		{"write ratio (W-R)/(W+R)", fmt.Sprintf("%.3f", sk.WrRatio)},
		{"latency p50 / p99 (us)", fmt.Sprintf("%.0f / %.0f", sk.LatencyP50, sk.LatencyP99)},
		{"IO size p50 / p99 (B)", fmt.Sprintf("%.0f / %.0f", sk.SizeP50, sk.SizeP99)},
		{"active blocks / segments", fmt.Sprintf("%.0f / %.0f", sk.ActiveBlocks, sk.ActiveSegments)},
	}
	for _, row := range rows {
		fmt.Printf("  %-26s %s\n", row[0], row[1])
	}
	fmt.Println("  hottest VDs (bytes):")
	for i, e := range sk.HotVDs {
		if i >= 5 {
			break
		}
		fmt.Printf("    VD %4d  %8.1f MiB (+/- %.1f)\n", e.Key,
			float64(e.Count)/(1<<20), float64(e.Err)/(1<<20))
	}

	exact := sketch.ExactSkewness(ds, set.Config())
	fmt.Print(report.AccuracySection("exact batch vs streamed sketch:", []report.AccuracyRow{
		{Metric: "1%-CCR", Exact: exact.CCR1, Sketch: sk.CCR1, Bound: 1e-6},
		{Metric: "10%-CCR", Exact: exact.CCR10, Sketch: sk.CCR10, Bound: 1e-6},
		{Metric: "NormCoV", Exact: exact.NormCoV, Sketch: sk.NormCoV, Bound: 1e-6},
		{Metric: "P2A total", Exact: exact.P2ATotal, Sketch: sk.P2ATotal, Bound: 1e-6},
		{Metric: "mean RAR", Exact: exact.MeanRAR, Sketch: sk.MeanRAR, Bound: 1e-6},
		{Metric: "write ratio", Exact: exact.WrRatio, Sketch: sk.WrRatio, Bound: 1e-6},
		{Metric: "latency p50", Exact: exact.LatencyP50, Sketch: sk.LatencyP50, Bound: 0.02},
		{Metric: "latency p99", Exact: exact.LatencyP99, Sketch: sk.LatencyP99, Bound: 0.02},
		{Metric: "size p50", Exact: exact.SizeP50, Sketch: sk.SizeP50, Bound: 0.02},
		{Metric: "size p99", Exact: exact.SizeP99, Sketch: sk.SizeP99, Bound: 0.02},
		{Metric: "active blocks", Exact: exact.ActiveBlocks, Sketch: sk.ActiveBlocks, Bound: 0.10},
		{Metric: "active segments", Exact: exact.ActiveSegments, Sketch: sk.ActiveSegments, Bound: 0.10},
	}))
	fmt.Printf("  hot-VD overlap %.2f, hot-segment overlap %.2f\n\n",
		sketch.Overlap(exact.HotVDs, sk.HotVDs),
		sketch.Overlap(exact.HotSegments, sk.HotSegments))
}

// runControlled executes the predict->act loop end to end — an observe pass,
// one plan, an actuated pass — and prints the mitigation summary ahead of the
// regular stack report. The dataset the report sections consume is the
// actuated run's, so every downstream number reflects life under mitigation.
func runControlled(ctx context.Context, fleet *workload.Fleet, opts ebs.Options, policy string, epochSec int) (*trace.Dataset, error) {
	pol, err := control.ByName(policy)
	if err != nil {
		return nil, err
	}
	if epochSec == 0 {
		epochSec = opts.DurationSec / 8
		if epochSec < 1 {
			epochSec = 1
		}
	}
	ds, plan, err := ebs.New(fleet).RunControlled(ctx, opts, pol, control.Config{EpochSec: epochSec})
	if err != nil {
		return nil, err
	}
	var migrates, evacs, lends, rebinds int
	for _, d := range plan.Decisions {
		switch d.Kind {
		case control.DecMigrate:
			migrates++
		case control.DecEvacuate:
			evacs++
		case control.DecLend:
			lends++
		case control.DecRebind:
			rebinds++
		}
	}
	imb := control.Imbalance(plan.BSLoad)
	fmt.Printf("control plane: policy %s, epoch %ds (%d epochs)\n", plan.Policy, epochSec, len(plan.BSLoad))
	fmt.Printf("  decisions: %d (%d migrate, %d evacuate, %d lend, %d rebind)\n",
		len(plan.Decisions), migrates, evacs, lends, rebinds)
	fmt.Printf("  decision log %s\n", plan.LogFingerprint())
	fmt.Printf("  inter-BS imbalance: mean CoV %.4f, max CoV %.4f, peak share %.3f\n",
		imb.MeanCoV, imb.MaxCoV, imb.PeakShare)
	return ds, nil
}

// runWorkerRole turns this process into a fabric worker: every simulation
// parameter comes from the coordinator's JoinFleet reply, so one coordinator
// drives a homogeneous fleet no matter how each worker was started.
// SIGINT requests an orderly drain (finish and upload the current shard).
func runWorkerRole(addr string) {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	drain := make(chan struct{})
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "ebssim: drain requested; finishing current shard")
		close(drain)
	}()
	err := fabric.RunWorker(context.Background(), fabric.WorkerConfig{
		Dial:  func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Drain: drain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebssim:", err)
		os.Exit(1)
	}
}

// serveFabric mounts a coordinator on l and waits for the merged dataset.
// After the run completes it keeps serving briefly so every worker can
// observe AssignDone and deregister before the listener goes away.
func serveFabric(ctx context.Context, co *fabric.Coordinator, l net.Listener) (*trace.Dataset, error) {
	srv := netblock.NewHandlerServer(co)
	go srv.Serve(l) //nolint:errcheck — lifecycle ends with Close
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "ebssim: coordinator dispatching %d shards\n", len(co.Plan()))
	ds, err := co.Wait(ctx)
	if err != nil {
		return nil, err
	}
	drainDeadline := time.Now().Add(5 * time.Second)
	for co.Workers() > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	return ds, nil
}

// runCoordinator listens on addr for worker daemons and merges their shard
// results into the run's dataset. With -peers it becomes one replica of a
// consensus-backed control plane: every ledger mutation is committed across
// the replica set before it takes effect, workers are redirected to the
// leader, and a surviving replica finishes the run if this one dies.
func runCoordinator(ctx context.Context, cfg workload.Config, opts ebs.Options, scenarioSpec, addr string, shards, replicaID int, peers string) (*trace.Dataset, error) {
	fc := fabric.Config{Fleet: cfg, Opts: opts, Scenario: scenarioSpec, Shards: shards}
	if peers != "" {
		peerList := strings.Split(peers, ",")
		if len(peerList) < 2 {
			return nil, fmt.Errorf("-peers needs at least two comma-separated addresses")
		}
		if replicaID < 0 || replicaID >= len(peerList) {
			return nil, fmt.Errorf("-replica-id %d outside the %d-replica set", replicaID, len(peerList))
		}
		pt := fabric.NewPeerTransport(replicaID, peerList)
		defer pt.Close()
		fc.ReplicaID = replicaID
		fc.Replicas = len(peerList)
		fc.Transport = pt
		fc.PeerAddrs = peerList
	}
	co, err := fabric.NewCoordinator(fc)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	if peers != "" {
		fmt.Fprintf(os.Stderr, "ebssim: control-plane replica %d/%d on %s (workers: ebsd -join %s)\n",
			replicaID, fc.Replicas, l.Addr(), peers)
	} else {
		fmt.Fprintf(os.Stderr, "ebssim: waiting for workers on %s (ebsd -join %s)\n", l.Addr(), l.Addr())
	}
	return serveFabric(ctx, co, l)
}

// runDistVerified runs the whole fabric in-process: a coordinator over a
// loopback transport plus n workers, then re-runs the simulation
// single-process and fails unless the two dataset fingerprints are
// identical — the distributed determinism oracle behind `make dist-smoke`.
// With replicas > 1 the control plane is a consensus-backed replica set, and
// leaderKills > 0 additionally schedules chaos kills of the acting leader
// mid-run — the fingerprint comparison must STILL hold, which is the
// replicated control plane's whole contract.
func runDistVerified(ctx context.Context, cfg workload.Config, opts ebs.Options, scenarioSpec string, n, shards, replicas, leaderKills int) (*trace.Dataset, error) {
	distOpts := opts
	var distStream *sketch.Set
	if opts.Stream != nil {
		distStream = sketch.NewSet(opts.Stream.Config())
		distOpts.Stream = distStream
	}
	var distChaos chaos.Stats
	if opts.ChaosStats != nil {
		distOpts.ChaosStats = &distChaos
	}
	distOpts.Progress = nil
	if leaderKills > 0 {
		// Leader kills live in the chaos plan but are control-plane-only: they
		// never expand in the workers' (Shards-less) schedules, so the
		// single-process reference below stays a valid oracle.
		plan := chaos.Plan{Recoverable: true}
		if distOpts.Chaos != nil {
			plan = *distOpts.Chaos
		}
		plan.LeaderKills = leaderKills
		distOpts.Chaos = &plan
	}

	var ds *trace.Dataset
	var err error
	if replicas > 1 {
		ds, err = runReplicatedDist(ctx, cfg, distOpts, scenarioSpec, n, shards, replicas)
	} else {
		ds, err = runLoopbackDist(ctx, cfg, distOpts, scenarioSpec, n, shards)
	}
	if err != nil {
		return nil, err
	}

	fleet, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	if scenarioSpec != "" {
		// The single-process reference must run the same scenario, rebuilt
		// from the spec string and bound to this regenerated fleet — exactly
		// what each fabric worker does, which is what makes the fingerprint
		// comparison meaningful.
		built, err := scenario.Build(scenarioSpec)
		if err != nil {
			return nil, err
		}
		wl, err := built.Bind(fleet)
		if err != nil {
			return nil, err
		}
		opts.Scenario = wl
	}
	ref, err := ebs.New(fleet).Run(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("single-process reference run: %w", err)
	}
	distFP, refFP := invariant.Fingerprint(ds), invariant.Fingerprint(ref)
	fmt.Printf("dist fingerprint   %s (%d workers, %d replicas)\n", distFP, n, replicas)
	fmt.Printf("single fingerprint %s\n", refFP)
	if distFP != refFP {
		return nil, fmt.Errorf("distributed run diverged from single-process run")
	}
	if opts.Stream != nil && distStream.Fingerprint() != opts.Stream.Fingerprint() {
		return nil, fmt.Errorf("distributed sketch state diverged from single-process run")
	}
	fmt.Println("distributed == single-process: byte-identical")
	return ds, nil
}

// runLoopbackDist is the unreplicated in-process fabric: one coordinator,
// n workers, one loopback.
func runLoopbackDist(ctx context.Context, cfg workload.Config, opts ebs.Options, scenarioSpec string, n, shards int) (*trace.Dataset, error) {
	co, err := fabric.NewCoordinator(fabric.Config{Fleet: cfg, Opts: opts, Scenario: scenarioSpec, Shards: shards})
	if err != nil {
		return nil, err
	}
	lb := fabric.NewLoopback()
	defer lb.Close()
	var wg sync.WaitGroup
	workerErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = fabric.RunWorker(ctx, fabric.WorkerConfig{Dial: lb.Dial})
		}(i)
	}
	ds, err := serveFabric(ctx, co, lb)
	if err != nil {
		return nil, err
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			return nil, fmt.Errorf("fabric worker %d: %w", i, werr)
		}
	}
	return ds, nil
}

// runReplicatedDist runs the in-process fabric over a consensus-backed
// replica set: workers dial every replica and follow leader redirects, and
// any leader kills in opts.Chaos fire mid-run. It reports the leadership
// history so a kill's succession is visible in the smoke output.
func runReplicatedDist(ctx context.Context, cfg workload.Config, opts ebs.Options, scenarioSpec string, n, shards, replicas int) (*trace.Dataset, error) {
	rs, err := fabric.NewReplicaSet(fabric.Config{Fleet: cfg, Opts: opts, Scenario: scenarioSpec, Shards: shards}, replicas)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	if sched := rs.Schedule(); sched != nil {
		fmt.Fprintf(os.Stderr, "ebssim: %d-replica control plane, %d leader kill(s) scheduled\n",
			replicas, len(sched.LeaderKills))
	} else {
		fmt.Fprintf(os.Stderr, "ebssim: %d-replica control plane\n", replicas)
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = fabric.RunWorker(ctx, fabric.WorkerConfig{
				Dials:       rs.Dials(),
				CallTimeout: 2 * time.Second,
			})
		}(i)
	}
	ds, err := rs.Wait(ctx)
	if err != nil {
		return nil, err
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			return nil, fmt.Errorf("fabric worker %d: %w", i, werr)
		}
	}
	if sched := rs.Schedule(); sched != nil && rs.KillsExecuted() != len(sched.LeaderKills) {
		return nil, fmt.Errorf("%d of %d scheduled leader kills fired", rs.KillsExecuted(), len(sched.LeaderKills))
	}
	var hist []string
	for _, tr := range rs.Transitions() {
		hist = append(hist, fmt.Sprintf("term %d -> replica %d", tr.Term, tr.Leader))
	}
	fmt.Fprintf(os.Stderr, "ebssim: leadership history: %s (%d kill(s) executed)\n",
		strings.Join(hist, ", "), rs.KillsExecuted())
	return ds, nil
}
