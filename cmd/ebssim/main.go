// Command ebssim runs the end-to-end EBS stack simulation and reports
// stack-level statistics: per-stage latency percentiles, worker-thread
// balance, throttle pressure, and storage-node traffic spread.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"ebslab/internal/chaos"
	"ebslab/internal/cluster"
	"ebslab/internal/ebs"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "fleet generation seed")
		dur     = flag.Int("dur", 60, "observation window seconds")
		nodes   = flag.Int("nodes", 16, "compute nodes per DC")
		maxVDs  = flag.Int("max-vds", 120, "virtual disks to simulate (0 = all)")
		workers = flag.Int("workers", 0, "simulation workers (0 = one per CPU)")
		verbose = flag.Bool("progress", false, "print simulation progress")
		check   = flag.Bool("check", false, "run the invariant suite over the run (conservation laws, throttle audit)")

		chaosOn     = flag.Bool("chaos", false, "inject a deterministic fault schedule (see -crashes, -storms, ...)")
		chaosSeed   = flag.Int64("chaos-seed", 0, "fault schedule seed (0 = follow -seed)")
		crashes     = flag.Int("crashes", 2, "BlockServer crash-and-recover windows to schedule")
		downSec     = flag.Int("down-sec", 5, "mean crash window length in seconds")
		penaltyUS   = flag.Float64("penalty-us", 0, "frontend-net latency penalty (us) for IOs hitting a crashed BS (0 = observe only)")
		storms      = flag.Int("storms", 1, "hot-tenant traffic storms to schedule")
		stormFactor = flag.Float64("storm-factor", 8, "demand multiplier inside a storm window")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.DCs = 1
	cfg.NodesPerDC = *nodes
	cfg.BSPerDC = 12
	cfg.BSPerCluster = 6
	cfg.Users = 16
	cfg.DurationSec = *dur

	fleet, err := workload.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebssim:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := ebs.Options{
		DurationSec:      *dur,
		TraceSampleEvery: 1,
		EventSampleEvery: 8,
		MaxVDs:           *maxVDs,
		Workers:          *workers,
		Check:            *check,
	}
	var chaosStats chaos.Stats
	if *chaosOn {
		opts.Chaos = &chaos.Plan{
			Seed:              *chaosSeed,
			BSCrashes:         *crashes,
			MeanDownSec:       *downSec,
			FailoverPenaltyUS: *penaltyUS,
			Storms:            *storms,
			StormFactor:       *stormFactor,
			Recoverable:       true,
		}
		opts.ChaosStats = &chaosStats
	}
	if *verbose {
		opts.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "simulated %d/%d VDs\n", done, total)
			}
		}
	}
	ds, err := ebs.New(fleet).RunContext(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebssim:", err)
		os.Exit(1)
	}
	fmt.Printf("simulated %d IOs over %ds (%d VDs)\n", len(ds.Trace), *dur, *maxVDs)
	if *check {
		fmt.Println("invariant suite: all conservation laws hold")
	}
	if *chaosOn {
		sched := opts.Chaos.Expand(*seed, chaos.Shape{
			BSs:    len(fleet.Topology.StorageNodes),
			VDs:    len(fleet.Topology.VDs),
			DurSec: *dur,
		})
		fmt.Println(sched)
		fmt.Println(chaosStats)
	}
	fmt.Println()

	// Per-stage latency percentiles.
	fmt.Println("latency by stage (us):")
	fmt.Printf("  %-14s %8s %8s %8s\n", "stage", "p50", "p99", "mean")
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		var xs []float64
		for i := range ds.Trace {
			xs = append(xs, float64(ds.Trace[i].Latency[st]))
		}
		fmt.Printf("  %-14s %8.0f %8.0f %8.0f\n", st,
			stats.Quantile(xs, 0.5), stats.Quantile(xs, 0.99), stats.Mean(xs))
	}
	var e2e []float64
	for i := range ds.Trace {
		e2e = append(e2e, ds.Trace[i].TotalLatency())
	}
	fmt.Printf("  %-14s %8.0f %8.0f %8.0f\n\n", "end-to-end",
		stats.Quantile(e2e, 0.5), stats.Quantile(e2e, 0.99), stats.Mean(e2e))

	// Worker-thread balance per node (top 5 busiest nodes).
	type nodeLoad struct {
		node cluster.NodeID
		wt   map[int8]float64
		tot  float64
	}
	loads := map[cluster.NodeID]*nodeLoad{}
	for i := range ds.Trace {
		r := &ds.Trace[i]
		nl := loads[r.Node]
		if nl == nil {
			nl = &nodeLoad{node: r.Node, wt: map[int8]float64{}}
			loads[r.Node] = nl
		}
		nl.wt[r.WT] += float64(r.Size)
		nl.tot += float64(r.Size)
	}
	var ranked []*nodeLoad
	for _, nl := range loads {
		ranked = append(ranked, nl)
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].tot > ranked[j].tot })
	fmt.Println("worker-thread balance (busiest nodes):")
	for i, nl := range ranked {
		if i >= 5 {
			break
		}
		var xs []float64
		for wt := 0; wt < fleet.Topology.Nodes[nl.node].WorkerNum; wt++ {
			xs = append(xs, nl.wt[int8(wt)])
		}
		fmt.Printf("  node %3d: %6.1f MiB total, WT-CoV %.2f\n",
			nl.node, nl.tot/(1<<20), stats.NormCoV(xs))
	}

	// Storage-node spread.
	perSN := map[cluster.StorageNodeID]float64{}
	for i := range ds.Trace {
		perSN[ds.Trace[i].Storage] += float64(ds.Trace[i].Size)
	}
	var snLoads []float64
	for _, v := range perSN {
		snLoads = append(snLoads, v)
	}
	fmt.Printf("\nstorage nodes touched: %d, inter-BS CoV %.2f\n", len(snLoads), stats.NormCoV(snLoads))
}
