// Command ebsgate is the always-on serving plane: a multi-tenant gateway
// that accepts skewness-study submissions over the netblock protocol, queues
// them FIFO per tenant behind token-bucket caps, dequeues with weighted-fair
// queueing, and executes each study in-process or on a replicated in-process
// fabric. The same binary is the client: point -addr at a running gateway to
// submit, poll, stream snapshots, cancel, or read tenant statistics.
//
// Serve:     ebsgate -listen :9100 -max-concurrent 4 -rate 1 -burst 2
// Submit:    ebsgate -addr :9100 -submit -tenant alice -seed 7 -dur 8 -wait
// Stream:    ebsgate -addr :9100 -snapshot 3
// Self-test: ebsgate -selftest   (serve over loopback TCP, run one study,
//
//	stream snapshots, verify the fingerprint against a direct run)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ebslab/internal/gateway"
	"ebslab/internal/gateway/gatewaytest"
	"ebslab/internal/netblock"
	"ebslab/internal/sketch"
)

func main() {
	var (
		listen   = flag.String("listen", "", "serve the gateway on this TCP address")
		maxConc  = flag.Int("max-concurrent", 2, "serve: studies running at once")
		rate     = flag.Float64("rate", 0, "serve: per-tenant submission grants per second (0 = uncapped)")
		burst    = flag.Float64("burst", 0, "serve: per-tenant token-bucket burst (0 = 1 when -rate is set)")
		maxQueue = flag.Int("max-queued", 16, "serve: per-tenant admission bound")
		freplica = flag.Int("fabric-replicas", 0, "serve: run studies on an in-process fabric with this many control-plane replicas (0 = run in-process)")
		fworkers = flag.Int("fabric-workers", 2, "serve: fabric workers per study")
		fshards  = flag.Int("fabric-shards", 0, "serve: fabric shard count when the study spec leaves it zero")

		addr     = flag.String("addr", "", "client: gateway address to talk to")
		submit   = flag.Bool("submit", false, "client: submit a study (see -tenant and the spec flags)")
		tenantF  = flag.String("tenant", "cli", "client: tenant name to submit as")
		wait     = flag.Bool("wait", false, "client: after -submit, poll until the study settles")
		statusID = flag.Uint64("status", 0, "client: poll this study ID")
		snapID   = flag.Uint64("snapshot", 0, "client: stream one sketch snapshot of this study ID")
		cancelID = flag.Uint64("cancel", 0, "client: cancel this study ID")
		statsT   = flag.String("stats", "", "client: read this tenant's serving statistics")

		seed     = flag.Int64("seed", 1, "spec: fleet generation seed")
		dur      = flag.Int("dur", 8, "spec: observation window seconds")
		nodes    = flag.Int("nodes", 4, "spec: compute nodes")
		users    = flag.Int("users", 16, "spec: tenants inside the study fleet")
		maxVDs   = flag.Int("max-vds", 0, "spec: virtual disks to simulate (0 = all)")
		shards   = flag.Int("shards", 0, "spec: fabric shard count (0 = gateway default)")
		kills    = flag.Int("leader-kill", 0, "spec: chaos leader kills mid-study (needs a replicated fabric gateway)")
		check    = flag.Bool("check", false, "spec: run the invariant suite over the study")
		ctlPol   = flag.String("control", "", "spec: run the study through the mitigation control plane under this policy (noop, reactive, predictive[-holt|-arima|-gbt], oracle)")
		ctlEpoch = flag.Int("epoch-sec", 0, "spec: control epoch seconds (0 = an eighth of -dur; needs -control)")
		scenSpec = flag.String("scenario", "", "spec: reshape the study's traffic with a scenario-library spec string (e.g. \"bufferbloat\", \"elastic,step=10,hi=2\"; replay is not servable — it reads server-local files)")
		selftest = flag.Bool("selftest", false, "serve over loopback TCP, run one study end to end, verify the fingerprint against a direct run")
	)
	flag.Parse()

	spec := gateway.StudySpec{
		Seed: *seed, DurationSec: *dur, Nodes: *nodes, Users: *users,
		MaxVDs: *maxVDs, Shards: *shards, LeaderKills: *kills, Check: *check,
		Control: *ctlPol, ControlEpochSec: *ctlEpoch,
		Scenario: *scenSpec,
	}
	cfg := gateway.Config{
		MaxConcurrent:      *maxConc,
		SubmitRate:         *rate,
		SubmitBurst:        *burst,
		MaxQueuedPerTenant: *maxQueue,
	}
	if *freplica > 0 {
		cfg.Fabric = &gateway.FabricConfig{Replicas: *freplica, Workers: *fworkers, Shards: *fshards}
	}

	switch {
	case *selftest:
		if err := runSelftest(cfg, spec); err != nil {
			fmt.Fprintln(os.Stderr, "ebsgate: selftest:", err)
			os.Exit(1)
		}
	case *listen != "":
		if err := serve(*listen, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "ebsgate:", err)
			os.Exit(1)
		}
	case *addr != "":
		if err := runClient(*addr, *tenantF, spec, *submit, *wait, *statusID, *snapID, *cancelID, *statsT); err != nil {
			fmt.Fprintln(os.Stderr, "ebsgate:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "ebsgate: pass -listen to serve, -addr to talk to a gateway, or -selftest")
		flag.Usage()
		os.Exit(2)
	}
}

// serve runs the gateway until SIGINT/SIGTERM, then drains.
func serve(listenAddr string, cfg gateway.Config) error {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	gw := gateway.New(cfg)
	srv := netblock.NewHandlerServer(gw)
	go srv.Serve(ln) //nolint:errcheck — ends with Close
	fmt.Fprintf(os.Stderr, "ebsgate: serving on %s (%s)\n", ln.Addr(), execDesc(cfg))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	fmt.Fprintln(os.Stderr, "ebsgate: shutting down")
	srv.Close()
	ln.Close()
	gw.Close()
	return nil
}

func execDesc(cfg gateway.Config) string {
	if cfg.Fabric == nil {
		return "in-process execution"
	}
	return fmt.Sprintf("fabric execution, %d replica(s) x %d worker(s)", cfg.Fabric.Replicas, cfg.Fabric.Workers)
}

// runClient performs exactly one client operation against a live gateway.
func runClient(addr, tenant string, spec gateway.StudySpec, submit, wait bool, statusID, snapID, cancelID uint64, statsTenant string) error {
	cl, err := gateway.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	switch {
	case submit:
		reply, err := cl.Submit(tenant, spec)
		if err != nil {
			return err
		}
		fmt.Printf("study %d %s%s\n", reply.StudyID, reply.State, map[bool]string{true: " (deduped)"}[reply.Deduped])
		if !wait || reply.Deduped {
			return nil
		}
		st, err := pollStudy(cl, reply.StudyID, nil)
		if err != nil {
			return err
		}
		printStatus(st)
		return nil
	case statusID != 0:
		st, err := cl.Status(statusID)
		if err != nil {
			return err
		}
		printStatus(st)
		return nil
	case snapID != 0:
		rep, err := cl.Snapshot(snapID)
		if err != nil {
			return err
		}
		fmt.Printf("study %d %s seq=%d vds=%d/%d sketch=%dB fp=%s\n",
			rep.StudyID, gateway.StateName(rep.State), rep.Seq, rep.VDsDone, rep.VDsTotal, len(rep.Sketch), rep.SketchFP)
		return nil
	case cancelID != 0:
		rep, err := cl.Cancel(cancelID)
		if err != nil {
			return err
		}
		fmt.Printf("study %d %s\n", cancelID, rep.State)
		return nil
	case statsTenant != "":
		st, err := cl.TenantStats(statsTenant)
		if err != nil {
			return err
		}
		fmt.Printf("tenant %s: submitted %d rejected %d deduped %d granted %d completed %d failed %d canceled %d/%d queued %d running %d tokens %d\n",
			st.Tenant, st.Submitted, st.Rejected, st.Deduped, st.Granted, st.Completed,
			st.Failed, st.CanceledQueued, st.CanceledRunning, st.Queued, st.Running, st.Tokens)
		return nil
	}
	return fmt.Errorf("pass one of -submit, -status, -snapshot, -cancel, -stats with -addr")
}

// pollStudy polls until the study settles, invoking onPoll (when set) each
// round so callers can stream snapshots while they wait.
func pollStudy(cl *gateway.Client, id uint64, onPoll func()) (gateway.StatusReply, error) {
	for {
		st, err := cl.Status(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st, nil
		}
		if onPoll != nil {
			onPoll()
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func printStatus(st gateway.StatusReply) {
	fmt.Printf("study %d tenant=%s %s vds=%d/%d", st.StudyID, st.Tenant, st.State, st.VDsDone, st.VDsTotal)
	if st.Kills > 0 {
		fmt.Printf(" leader-kills=%d", st.Kills)
	}
	if st.DatasetFP != "" {
		fmt.Printf("\n  dataset  %s\n  sketch   %s", st.DatasetFP, st.SketchFP)
	}
	if st.ControlLogFP != "" {
		fmt.Printf("\n  control  %s (%d decisions)", st.ControlLogFP, st.ControlDecisions)
	}
	if st.Error != "" {
		fmt.Printf(" error=%s", st.Error)
	}
	fmt.Println()
}

// runSelftest is the gateway-smoke gate: serve a real gateway on loopback
// TCP, push one study through the full wire path, stream sketch snapshots
// while it runs, and fail unless the served fingerprints are byte-identical
// to a direct single-process run of the same spec.
func runSelftest(cfg gateway.Config, spec gateway.StudySpec) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	gw := gateway.New(cfg)
	defer gw.Close()
	srv := netblock.NewHandlerServer(gw)
	defer srv.Close()
	go srv.Serve(ln) //nolint:errcheck — ends with Close
	fmt.Fprintf(os.Stderr, "ebsgate: selftest gateway on %s (%s)\n", ln.Addr(), execDesc(cfg))

	cl, err := gateway.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer cl.Close()
	reply, err := cl.Submit("smoke", spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ebsgate: study %d submitted (%s)\n", reply.StudyID, reply.State)

	snaps := 0
	var lastSnap gateway.SnapshotReply
	st, err := pollStudy(cl, reply.StudyID, func() {
		rep, err := cl.Snapshot(reply.StudyID)
		if err == nil && len(rep.Sketch) > 0 {
			snaps++
			lastSnap = rep
			fmt.Fprintf(os.Stderr, "ebsgate: snapshot seq=%d vds=%d/%d (%d bytes)\n",
				rep.Seq, rep.VDsDone, rep.VDsTotal, len(rep.Sketch))
		}
	})
	if err != nil {
		return err
	}
	if st.State != "done" {
		return fmt.Errorf("study settled as %s: %s", st.State, st.Error)
	}
	// The final frame always carries state, so a fast study still streams.
	if final, err := cl.Snapshot(reply.StudyID); err == nil && len(final.Sketch) > 0 {
		snaps++
		lastSnap = final
	}
	if snaps == 0 {
		return fmt.Errorf("no sketch snapshot streamed")
	}
	set, err := sketch.DecodeSet(lastSnap.Sketch)
	if err != nil {
		return fmt.Errorf("streamed sketch does not decode: %w", err)
	}
	if fp := set.Fingerprint(); fp != lastSnap.SketchFP {
		return fmt.Errorf("streamed sketch fingerprint %s, frame claims %s", fp, lastSnap.SketchFP)
	}
	if lastSnap.SketchFP != st.SketchFP {
		return fmt.Errorf("final streamed fingerprint %s diverges from final sketch %s", lastSnap.SketchFP, st.SketchFP)
	}

	oracle, err := gatewaytest.RunOracle(context.Background(), spec)
	if err != nil {
		return err
	}
	if st.DatasetFP != oracle.DatasetFP {
		return fmt.Errorf("served dataset fingerprint %s, direct run %s", st.DatasetFP, oracle.DatasetFP)
	}
	if st.SketchFP != oracle.SketchFP {
		return fmt.Errorf("served sketch fingerprint %s, direct run %s", st.SketchFP, oracle.SketchFP)
	}
	fmt.Printf("ebsgate selftest: study %d over TCP, %d snapshot(s) streamed, fingerprints match direct run\n", reply.StudyID, snaps)
	fmt.Printf("  dataset %s\n  sketch  %s\n", st.DatasetFP, st.SketchFP)
	return nil
}
