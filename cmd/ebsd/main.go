// Command ebsd is the distributed-simulation worker daemon: it joins a
// coordinator's fleet (cmd/ebssim -workers-addr), executes the shards it is
// assigned with the in-process ebs engine, and uploads each shard's partial
// results. SIGINT/SIGTERM request an orderly drain — the current shard
// finishes and uploads before the daemon deregisters; a second signal kills
// it immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ebslab/internal/fabric"
)

func main() {
	var (
		join     = flag.String("join", "", "coordinator address(es) to join, comma-separated and indexed by replica ID for a replicated control plane (e.g. the ebssim -workers-addr / -peers values)")
		waitPoll = flag.Duration("wait-poll", 25*time.Millisecond, "retry interval when no shard is placeable")
	)
	flag.Parse()
	if *join == "" {
		fmt.Fprintln(os.Stderr, "ebsd: -join is required")
		flag.Usage()
		os.Exit(2)
	}
	var dials []func() (net.Conn, error)
	for _, addr := range strings.Split(*join, ",") {
		addr := strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		dials = append(dials, func() (net.Conn, error) { return net.Dial("tcp", addr) })
	}
	if len(dials) == 0 {
		fmt.Fprintln(os.Stderr, "ebsd: -join lists no usable address")
		os.Exit(2)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	drain := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "ebsd: drain requested; finishing current shard")
		close(drain)
		<-sigs
		fmt.Fprintln(os.Stderr, "ebsd: killed")
		cancel()
	}()

	err := fabric.RunWorker(ctx, fabric.WorkerConfig{
		Dials:    dials,
		Drain:    drain,
		WaitPoll: *waitPoll,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebsd:", err)
		os.Exit(1)
	}
}
