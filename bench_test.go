// Package ebslab's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (see DESIGN.md's per-experiment index) and run
// the ablations it motivates. Each benchmark executes one experiment per
// iteration on a shared small fleet and publishes its headline statistic
// via b.ReportMetric, so `go test -bench . -benchmem` doubles as the
// reproduction harness.
package ebslab

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/control"
	"ebslab/internal/core"
	"ebslab/internal/ebs"
	"ebslab/internal/fabric"
	"ebslab/internal/hypervisor"
	"ebslab/internal/netblock"
	"ebslab/internal/scenario"
	"ebslab/internal/sketch"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

var (
	benchOnce  sync.Once
	benchStudy *core.Study
	benchErr   error
)

func study(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		cfg := workload.DefaultConfig()
		cfg.DCs = 2
		cfg.NodesPerDC = 40
		cfg.BSPerDC = 12
		cfg.BSPerCluster = 6
		cfg.Users = 60
		cfg.DurationSec = 240
		benchStudy, benchErr = core.NewStudy(cfg)
	})
	if benchErr != nil {
		b.Fatalf("NewStudy: %v", benchErr)
	}
	return benchStudy
}

func BenchmarkTable2(b *testing.B) {
	s := study(b)
	var r core.Table2Result
	for i := 0; i < b.N; i++ {
		r = s.Table2Summary()
	}
	b.ReportMetric(float64(r.VDs), "vds")
}

func BenchmarkTable3(b *testing.B) {
	s := study(b)
	var r core.Table3Result
	for i := 0; i < b.N; i++ {
		r = s.Table3Baseline()
	}
	b.ReportMetric(r.DCs[0].Levels[1].P2AMedR, "vm-read-p2a")
	b.ReportMetric(r.DCs[0].Levels[1].CCR1Read, "vm-read-ccr1-pct")
}

func BenchmarkTable4(b *testing.B) {
	s := study(b)
	var r core.Table4Result
	for i := 0; i < b.N; i++ {
		r = s.Table4ByApp()
	}
	b.ReportMetric(float64(len(r.Rows)), "app-classes")
}

func BenchmarkFig2a(b *testing.B) {
	s := study(b)
	var r core.Fig2aResult
	for i := 0; i < b.N; i++ {
		r = s.Fig2aWTCoV([]int{30, 120})
	}
	b.ReportMetric(r.MedianRead[0], "wt-cov-read")
	b.ReportMetric(r.MedianWrite[0], "wt-cov-write")
}

func BenchmarkFig2b(b *testing.B) {
	s := study(b)
	var r core.Fig2bResult
	for i := 0; i < b.N; i++ {
		r = s.Fig2bThreeTier()
	}
	b.ReportMetric(r.VM2VDRead, "vm2vd-cov-read")
	b.ReportMetric(r.TypeIIIPct, "type3-pct")
}

func BenchmarkFig2c(b *testing.B) {
	s := study(b)
	var r core.Fig2cResult
	for i := 0; i < b.N; i++ {
		r = s.Fig2cHottestQP()
	}
	b.ReportMetric(100*r.FracAbove80Read, "nodes-above80-read-pct")
}

func BenchmarkFig2d(b *testing.B) {
	s := study(b)
	var r core.Fig2dResult
	for i := 0; i < b.N; i++ {
		r = s.Fig2dRebinding(core.Fig2dOptions{MaxNodes: 24, WinSec: 10})
	}
	b.ReportMetric(100*r.FracImproved, "improved-pct")
	b.ReportMetric(r.MedianGain, "median-gain")
}

func BenchmarkFig2ef(b *testing.B) {
	s := study(b)
	var r core.Fig2efResult
	for i := 0; i < b.N; i++ {
		r = s.Fig2efBurstSeries(core.Fig2efOptions{MaxNodes: 16, WinSec: 10})
	}
	b.ReportMetric(r.BurstyP2A, "bursty-p2a")
	b.ReportMetric(r.CalmP2A, "calm-p2a")
}

func BenchmarkFig3a(b *testing.B) {
	s := study(b)
	var r core.Fig3aResult
	for i := 0; i < b.N; i++ {
		r = s.Fig3aSingleVDCase()
	}
	b.ReportMetric(100*r.PeakRAR, "peak-rar-pct")
}

func BenchmarkFig3b(b *testing.B) {
	s := study(b)
	var r core.Fig3bcResult
	for i := 0; i < b.N; i++ {
		r = s.Fig3bRAR(false)
	}
	b.ReportMetric(100*r.MedianRARTput, "median-rar-pct")
	b.ReportMetric(r.TputOverIOPS, "tput-over-iops")
}

func BenchmarkFig3c(b *testing.B) {
	s := study(b)
	var r core.Fig3bcResult
	for i := 0; i < b.N; i++ {
		r = s.Fig3bRAR(true)
	}
	b.ReportMetric(100*r.WriteDriven, "write-driven-pct")
}

func BenchmarkFig3de(b *testing.B) {
	s := study(b)
	var r core.Fig3deResult
	for i := 0; i < b.N; i++ {
		r = s.Fig3deReduction(core.Fig3deOptions{})
	}
	b.ReportMetric(100*r.MedianRRTput[len(r.MedianRRTput)-1], "rr-tput-p08-pct")
}

func BenchmarkFig3fg(b *testing.B) {
	s := study(b)
	for _, p := range []float64{0.2, 0.4, 0.6, 0.8} {
		p := p
		b.Run(rateName(p), func(b *testing.B) {
			var r core.Fig3fgResult
			for i := 0; i < b.N; i++ {
				r = s.Fig3fgLendingGain(core.Fig3fgOptions{Rates: []float64{p}, PeriodSec: 60})
			}
			b.ReportMetric(100*r.PosFrac[0], "positive-pct")
		})
	}
}

func rateName(p float64) string {
	switch p {
	case 0.2:
		return "p02"
	case 0.4:
		return "p04"
	case 0.6:
		return "p06"
	}
	return "p08"
}

func BenchmarkFig4a(b *testing.B) {
	s := study(b)
	var r core.Fig4aResult
	for i := 0; i < b.N; i++ {
		r = s.Fig4aFrequentMigration(core.Fig4aOptions{PeriodSec: 5})
	}
	b.ReportMetric(100*r.MaxProp[0], "max-freq-pct")
}

func BenchmarkFig4b(b *testing.B) {
	s := study(b)
	var r core.Fig4bResult
	for i := 0; i < b.N; i++ {
		r = s.Fig4bImporterSelection(core.Fig4bOptions{PeriodSec: 5})
	}
	b.ReportMetric(r.MedianInterval[len(r.MedianInterval)-1], "ideal-interval")
}

func BenchmarkFig4c(b *testing.B) {
	s := study(b)
	var r core.Fig4cResult
	for i := 0; i < b.N; i++ {
		r = s.Fig4cPredictionMSE(core.Fig4cOptions{PeriodSec: 5, EpochLen: 20})
	}
	b.ReportMetric(r.MeanNormMSE[1], "arima-nmse")
	b.ReportMetric(r.MeanNormMSE[4], "attn-period-nmse")
}

func BenchmarkFig5a(b *testing.B) {
	s := study(b)
	var r core.Fig5aResult
	for i := 0; i < b.N; i++ {
		r = s.Fig5aReadWriteCoV(core.Fig5aOptions{PeriodSec: 5})
	}
	b.ReportMetric(100*r.FracAboveDiagonal, "above-diag-pct")
}

func BenchmarkFig5b(b *testing.B) {
	s := study(b)
	var r core.Fig5bResult
	for i := 0; i < b.N; i++ {
		r = s.Fig5bSegmentDominance(core.Fig5bOptions{PeriodSec: 5})
	}
	b.ReportMetric(100*r.FracAbove09, "one-sided-clusters-pct")
}

func BenchmarkFig5c(b *testing.B) {
	s := study(b)
	var r core.Fig5cResult
	for i := 0; i < b.N; i++ {
		r = s.Fig5cWriteThenRead(core.Fig5cOptions{PeriodSec: 5})
	}
	b.ReportMetric(r.WTRReadCoV, "wtr-read-cov")
	b.ReportMetric(r.WriteOnlyReadCoV, "wo-read-cov")
}

func BenchmarkFig6a(b *testing.B) {
	benchFig6(b, func(r core.Fig6Result) (float64, string) {
		return 100 * r.MedianAccessRate[0], "access-rate-64mib-pct"
	})
}

func BenchmarkFig6b(b *testing.B) {
	benchFig6(b, func(r core.Fig6Result) (float64, string) {
		return 100 * r.MedianBlockShare[0], "block-share-64mib-pct"
	})
}

func BenchmarkFig6c(b *testing.B) {
	benchFig6(b, func(r core.Fig6Result) (float64, string) {
		return 100 * r.WriteDomFrac[0], "write-dom-64mib-pct"
	})
}

func BenchmarkFig6d(b *testing.B) {
	benchFig6(b, func(r core.Fig6Result) (float64, string) {
		return 100 * r.MeanHotRate[0], "hot-rate-64mib-pct"
	})
}

func benchFig6(b *testing.B, metric func(core.Fig6Result) (float64, string)) {
	s := study(b)
	var r core.Fig6Result
	for i := 0; i < b.N; i++ {
		r = s.Fig6HottestBlocks(core.Fig6Options{MaxVDs: 16, MaxEventsPerVD: 4000})
	}
	v, name := metric(r)
	b.ReportMetric(v, name)
}

func BenchmarkFig7a(b *testing.B) {
	s := study(b)
	var r core.Fig7aResult
	for i := 0; i < b.N; i++ {
		r = s.Fig7aHitRatio(core.Fig7aOptions{MaxVDs: 12, MaxEventsPerVD: 4000})
	}
	b.ReportMetric(100*r.LRUMed[0], "lru-64mib-pct")
	b.ReportMetric(100*r.FCMed[len(r.FCMed)-1], "fc-2048mib-pct")
}

func BenchmarkFig7bc(b *testing.B) {
	s := study(b)
	var r core.Fig7bcResult
	for i := 0; i < b.N; i++ {
		r = s.Fig7bcLatencyGain(core.Fig7bcOptions{MaxVDs: 12, MaxEventsPerVD: 4000, BlockMiB: 2048})
	}
	b.ReportMetric(100*r.CNWrite[0], "cn-write-p0-pct")
	b.ReportMetric(100*r.BSWrite[0], "bs-write-p0-pct")
}

func BenchmarkFig7d(b *testing.B) {
	s := study(b)
	var r core.Fig7dResult
	for i := 0; i < b.N; i++ {
		r = s.Fig7dSpaceUtilization(core.Fig7dOptions{Threshold: 0.25})
	}
	b.ReportMetric(r.CNSpread[0], "cn-spread")
	b.ReportMetric(r.BSSpread[0], "bs-spread")
}

// --- Ablations called out in DESIGN.md ---

// BenchmarkAblationRebindPeriod sweeps the rebinding period (in 10 ms
// slots): the paper argues shorter periods are needed than NVMe
// virtualization can afford.
func BenchmarkAblationRebindPeriod(b *testing.B) {
	s := study(b)
	for _, period := range []int{1, 5, 10, 50} {
		period := period
		b.Run(periodName(period), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				nodes := 0
				improved := 0
				cfg := hypervisor.RebindConfig{PeriodSlots: period, Trigger: 1.2, EvalSlots: 100}
				r := s.RebindWithConfig(core.RebindOptions{MaxNodes: 16, WinSec: 10, Config: cfg})
				for _, p := range r.Points {
					nodes++
					if p.Gain < 0.999 {
						improved++
					}
				}
				if nodes > 0 {
					frac = float64(improved) / float64(nodes)
				}
			}
			b.ReportMetric(100*frac, "improved-pct")
		})
	}
}

func periodName(p int) string {
	switch p {
	case 1:
		return "10ms"
	case 5:
		return "50ms"
	case 10:
		return "100ms"
	}
	return "500ms"
}

// BenchmarkAblationDispatch compares single-WT hosting against the per-IO
// dispatch models of §4.4.
func BenchmarkAblationDispatch(b *testing.B) {
	s := study(b)
	for _, policy := range []hypervisor.DispatchPolicy{
		hypervisor.DispatchSingleWT, hypervisor.DispatchLeastLoaded, hypervisor.DispatchRoundRobinIO,
	} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			var r core.DispatchAblation
			for i := 0; i < b.N; i++ {
				r = s.AblateDispatch(core.DispatchOptions{MaxNodes: 16, WinSec: 10, Policy: policy})
			}
			b.ReportMetric(r.MedianCoV, "median-wt-cov")
			b.ReportMetric(float64(r.SyncOps), "sync-ops")
		})
	}
}

// BenchmarkAblationImporter runs the full importer-policy sweep (the
// Fig 4(b) study) as one benchmark per policy.
func BenchmarkAblationImporter(b *testing.B) {
	s := study(b)
	r := s.Fig4bImporterSelection(core.Fig4bOptions{PeriodSec: 5})
	for i, name := range r.Policies {
		i := i
		b.Run(name, func(b *testing.B) {
			var v float64
			for j := 0; j < b.N; j++ {
				rr := s.Fig4bImporterSelection(core.Fig4bOptions{PeriodSec: 5})
				v = rr.MedianInterval[i]
			}
			b.ReportMetric(v, "median-interval")
		})
	}
}

// BenchmarkAblationHosting compares the §4.4 hosting models on sampled IO.
func BenchmarkAblationHosting(b *testing.B) {
	s := study(b)
	var r core.HostingAblation
	for i := 0; i < b.N; i++ {
		r = s.AblateHosting(core.HostingOptions{MaxNodes: 12, WinSec: 6})
	}
	for mode, iso := range r.MedianIsolation {
		b.ReportMetric(iso, mode.String()+"-isolation")
	}
}

// BenchmarkAblationCachePolicy adds CLOCK to the Fig 7(a) comparison.
func BenchmarkAblationCachePolicy(b *testing.B) {
	s := study(b)
	var r core.CachePolicyAblation
	for i := 0; i < b.N; i++ {
		r = s.AblateCachePolicy(core.CachePolicyOptions{MaxVDs: 10, MaxEventsPerVD: 4000, BlockMiB: 256})
	}
	for _, name := range []string{"fifo", "clock", "lru", "frozen"} {
		b.ReportMetric(100*r.Median[name], name+"-hit-pct")
	}
}

// BenchmarkAblationPredictors runs the full forecaster roster.
func BenchmarkAblationPredictors(b *testing.B) {
	s := study(b)
	var r core.PredictorAblation
	for i := 0; i < b.N; i++ {
		r = s.AblatePredictors(core.PredictorOptions{PeriodSec: 10})
	}
	for i, m := range r.Methods {
		b.ReportMetric(r.Median[i], m+"-nmse")
	}
}

// BenchmarkAblationFailover measures BS-failure recovery quality.
func BenchmarkAblationFailover(b *testing.B) {
	s := study(b)
	var r core.FailoverAblation
	for i := 0; i < b.N; i++ {
		r = s.AblateFailover(core.FailoverOptions{PeriodSec: 10})
	}
	b.ReportMetric(r.Greedy.MaxOverload, "greedy-overload")
	b.ReportMetric(r.Random.MaxOverload, "random-overload")
}

// BenchmarkEndToEnd measures the full stack simulation throughput
// (simulated IOs per wall second).
func BenchmarkEndToEnd(b *testing.B) {
	s := study(b)
	sim := ebs.New(s.Fleet)
	var total int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := sim.Run(context.Background(), ebs.Options{DurationSec: 10, TraceSampleEvery: 1, EventSampleEvery: 16, MaxVDs: 40})
		if err != nil {
			b.Fatal(err)
		}
		total += len(ds.Trace)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "ios-per-sec")
}

// BenchmarkSimWorkers measures the sharded engine's scaling: the same
// simulation at 1, 2, and 4 workers. Output is identical across
// sub-benchmarks; only the wall-clock time should drop with parallelism
// (expect roughly linear gains on idle multicore hardware).
func BenchmarkSimWorkers(b *testing.B) {
	s := study(b)
	sim := ebs.New(s.Fleet)
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				ds, err := sim.Run(context.Background(), ebs.Options{
					DurationSec: 10, TraceSampleEvery: 1, EventSampleEvery: 16,
					MaxVDs: 40, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				total = len(ds.Trace)
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds()*float64(b.N), "ios-per-sec")
		})
	}
}

// synthSketchRecords builds a deterministic synthetic record stream for the
// sketch ingest benchmark: 32 disks with a heavy-tailed size mix spread over
// a 64-second window.
func synthSketchRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range recs {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		vd := z % 32
		recs[i] = trace.Record{
			VD:      cluster.VDID(vd),
			Op:      trace.Op(z >> 8 & 1),
			Size:    int32(4096 << (z >> 16 % 5)),
			Offset:  int64(z>>24%4096) * 4096,
			Segment: cluster.SegmentID(vd*8 + z>>40%8),
			TimeUS:  int64(z>>48%64) * 1_000_000,
		}
		recs[i].Latency[trace.StageComputeNode] = float32(50 + z%400)
	}
	return recs
}

// BenchmarkSketchIngest measures the streaming path in isolation: one
// sketch.Set ingesting a synthetic record stream. With -benchmem, the B/op
// column is the whole per-iteration footprint (the set is rebuilt each
// iteration), so it must stay flat as records grow 8x — sketch state is
// fleet-bounded, not trace-bounded.
func BenchmarkSketchIngest(b *testing.B) {
	for _, n := range []int{8192, 65536} {
		n := n
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			recs := synthSketchRecords(n)
			b.ReportAllocs()
			b.ResetTimer()
			var ios uint64
			for i := 0; i < b.N; i++ {
				set := sketch.NewSet(sketch.Config{DurationSec: 64})
				for j := range recs {
					set.Observe(&recs[j])
				}
				ios = set.Totals().IOs
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "ios-per-sec")
			if ios != uint64(n) {
				b.Fatalf("ingested %d records, want %d", ios, n)
			}
		})
	}
}

// synthReplayCSV renders a deterministic tianchi-schema trace (dev, op,
// offset, length, timestamp-µs) for the replay ingest benchmark: 64 devices,
// heavy-tailed sizes, timestamps ticking forward 37µs per row.
func synthReplayCSV(n int) []byte {
	var buf bytes.Buffer
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		op := "R"
		if z>>8&3 == 0 {
			op = "W"
		}
		fmt.Fprintf(&buf, "%d,%s,%d,%d,%d\n",
			z%64, op, (z>>16%4096)*4096, 512*(1+z>>32%64), 1_000_000+uint64(i)*37)
	}
	return buf.Bytes()
}

// BenchmarkReplayIngest measures the foreign-trace replay ingester in
// isolation: decoding a tianchi-schema stream, normalising every record onto
// the fleet's address space, and bucketing it per VD. The ios-per-sec metric
// is the headline ingest rate the bench gate watches; B/op must scale with
// the kept records, never with fleet size.
func BenchmarkReplayIngest(b *testing.B) {
	s := study(b)
	for _, n := range []int{8192, 65536} {
		n := n
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			input := synthReplayCSV(n)
			b.ReportAllocs()
			b.ResetTimer()
			var kept int
			for i := 0; i < b.N; i++ {
				cfg := scenario.ReplayConfig{Path: "bench.csv", Schema: scenario.SchemaTianchi, SampleEvery: 1, TimeScale: 1}
				rp, err := cfg.Ingest(bytes.NewReader(input), s.Fleet)
				if err != nil {
					b.Fatal(err)
				}
				kept = rp.Stats().Kept
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "ios-per-sec")
			if kept != n {
				b.Fatalf("kept %d records, want %d", kept, n)
			}
		})
	}
}

// BenchmarkFabricDispatch measures the distributed fabric end to end: each
// iteration stands up a coordinator and two loopback workers, runs the full
// join/dispatch/upload/merge cycle, and tears it down. The wire path — the
// netblock codec and the binary shard-result frames — is the real one; only
// the sockets are in-process pipes, so the number is dispatch overhead, not
// kernel networking.
func BenchmarkFabricDispatch(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.DCs = 1
	cfg.NodesPerDC = 6
	cfg.BSPerDC = 3
	cfg.BSPerCluster = 3
	cfg.Users = 8
	cfg.DurationSec = 10
	var ios int
	for i := 0; i < b.N; i++ {
		co, err := fabric.NewCoordinator(fabric.Config{
			Fleet:  cfg,
			Opts:   ebs.Options{DurationSec: 6, TraceSampleEvery: 2, EventSampleEvery: 4, MaxVDs: 16, Workers: 1},
			Shards: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		lb := fabric.NewLoopback()
		srv := netblock.NewHandlerServer(co)
		go srv.Serve(lb) //nolint:errcheck — lifecycle ends with Close
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := fabric.RunWorker(context.Background(), fabric.WorkerConfig{Dial: lb.Dial}); err != nil {
					b.Error(err)
				}
			}()
		}
		ds, err := co.Wait(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		wg.Wait()
		srv.Close()
		lb.Close()
		ios += len(ds.Trace)
	}
	b.ReportMetric(float64(ios)/b.Elapsed().Seconds(), "ios-per-sec")
}

// BenchmarkSeriesGeneration measures the raw traffic generator.
func BenchmarkSeriesGeneration(b *testing.B) {
	s := study(b)
	var sink float64
	for i := 0; i < b.N; i++ {
		series := s.Fleet.VDSeries(0, 300)
		sink += series[0].ReadBps
	}
	_ = sink
	b.ReportMetric(stats.Mean([]float64{300}), "seconds-per-series")
}

// BenchmarkControlOverhead prices the predict->act mitigation loop against
// the identical study uncontrolled. The "noop" case is the control plane's
// fixed cost — a full observe pass plus planning over an empty action set —
// and "reactive" adds real actuation (migration lookups, lending overrides)
// to the bill. The gate watches ios-per-sec on all three.
func BenchmarkControlOverhead(b *testing.B) {
	s := study(b)
	sim := ebs.New(s.Fleet)
	opts := ebs.Options{
		DurationSec: 10, TraceSampleEvery: 1, EventSampleEvery: 16,
		MaxVDs: 40, Workers: 2,
	}
	b.Run("uncontrolled", func(b *testing.B) {
		b.ReportAllocs()
		var ios int
		for i := 0; i < b.N; i++ {
			ds, err := sim.Run(context.Background(), opts)
			if err != nil {
				b.Fatal(err)
			}
			ios += len(ds.Trace)
		}
		b.ReportMetric(float64(ios)/b.Elapsed().Seconds(), "ios-per-sec")
	})
	for _, name := range []string{"noop", "reactive"} {
		name := name
		b.Run("policy="+name, func(b *testing.B) {
			b.ReportAllocs()
			pol, err := control.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var ios int
			for i := 0; i < b.N; i++ {
				ds, _, err := sim.RunControlled(context.Background(), opts, pol, control.Config{EpochSec: 2})
				if err != nil {
					b.Fatal(err)
				}
				ios += len(ds.Trace)
			}
			b.ReportMetric(float64(ios)/b.Elapsed().Seconds(), "ios-per-sec")
		})
	}
}
